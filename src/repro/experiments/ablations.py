"""Ablations for the paper's remarks and design choices.

Five sweeps the paper discusses but does not tabulate:

* ``tiebreak_sweep`` — Table 3's strategies at d in {2, 3}: does the
  smaller-arc advantage persist with more choices?
* ``mn_sweep`` — the ``m != n`` remark: max load as m/n grows should be
  ``O(m/n) + O(log log n)``, i.e. linear in m/n with a tiny intercept.
* ``dimension_sweep`` — the higher-dimension remark: tori of dimension
  1-3 behave alike under d = 2.
* ``geometry_sweep`` — bin geometries head-to-head (uniform, ring,
  torus, CAN dyadic zones) probing the conclusion's non-uniformity
  question.
* ``staleness_sweep`` — parallel arrivals in rounds: how stale may
  load information get before two choices stop helping?

Every sweep submits its cells through :mod:`repro.sweeps`, so re-runs
with unchanged parameters are served from the result cache (pass
``cache="off"`` to force recomputation).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.experiments.table3 import STRATEGIES
from repro.stats.trials import CellSpec
from repro.sweeps.runner import fetch_or_compute, resolve_cache, submit_cell
from repro.utils.rng import stable_hash_seed

__all__ = [
    "tiebreak_sweep",
    "mn_sweep",
    "dimension_sweep",
    "geometry_sweep",
    "staleness_sweep",
]


def staleness_sweep(
    *,
    n: int = 2**11,
    round_sizes=(1, 16, 256, None),
    d_values=(2,),
    trials: int = 30,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    cache="auto",
) -> ExperimentReport:
    """Parallel-arrival ablation: max load vs round size (stale loads).

    ``None`` in ``round_sizes`` means one fully parallel round of all
    ``n`` balls.  The systems question behind the paper\'s IPTPS
    companion: how fresh must load information be for two choices to
    keep working?  (Answer measured here: rounds up to ~n/8 cost
    almost nothing.)
    """
    import numpy as np

    from repro.core.ring import RingSpace
    from repro.core.rounds import place_balls_in_rounds
    from repro.stats.distributions import MaxLoadDistribution
    from repro.utils.rng import spawn_seed_sequences

    store = resolve_cache(cache)
    cells = {}
    resolved = [n if b is None else int(b) for b in round_sizes]
    for b in resolved:
        for d in d_values:
            cell_seed = stable_hash_seed("abl-stale", seed, n, b, d)

            def compute(b=b, d=d, cell_seed=cell_seed) -> MaxLoadDistribution:
                maxima = []
                for ss in spawn_seed_sequences(cell_seed, trials):
                    rng = np.random.default_rng(ss)
                    space = RingSpace.random(n, seed=rng)
                    loads = place_balls_in_rounds(
                        space, n, d, round_size=b, seed=rng
                    )
                    maxima.append(int(loads.max()))
                return MaxLoadDistribution.from_samples(maxima)

            spec_dict = {
                "kind": "ablation_staleness",
                "n": n,
                "round_size": b,
                "d": d,
                "trials": trials,
                "seed": cell_seed,
            }
            cells[(b, d)] = fetch_or_compute(spec_dict, compute, cache=store)
    return ExperimentReport(
        name="ablation_staleness",
        title=f"Ablation: parallel-arrival round size (ring, n = m = {n})",
        cells=cells,
        row_keys=resolved,
        col_keys=list(d_values),
        col_label=lambda d: f"d = {d}",
        row_label=lambda b: f"b={b}",
        meta={"n": n, "trials": trials, "seed": seed},
    )


def geometry_sweep(
    *,
    n: int = 2**10,
    d_values=(1, 2, 3),
    trials: int = 50,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    cache="auto",
) -> ExperimentReport:
    """Bin geometries head-to-head: uniform vs ring vs torus vs CAN.

    CAN zones (dyadic volumes from repeated halving) are the most
    skewed geometry in the package — region sizes span several octaves
    — so this sweep probes the conclusion's question of "how much
    non-uniformity the two-choice paradigm can stand".  ``d = 1`` shows
    the geometry-dependent imbalance; ``d >= 2`` should flatten all
    rows to the same few values.
    """
    from repro.dht.can import CanSpace
    from repro.stats.distributions import MaxLoadDistribution
    from repro.utils.rng import spawn_seed_sequences

    import numpy as np

    from repro.core.placement import place_balls
    from repro.core.ring import RingSpace
    from repro.core.torus import TorusSpace
    from repro.baselines.uniform import UniformSpace

    builders = {
        "uniform": lambda rng: UniformSpace(n),
        "ring": lambda rng: RingSpace.random(n, seed=rng),
        "torus": lambda rng: TorusSpace.random(n, seed=rng),
        "can": lambda rng: CanSpace.random(n, seed=rng),
    }
    store = resolve_cache(cache)
    cells = {}
    for kind, build in builders.items():
        for d in d_values:
            cell_seed = stable_hash_seed("abl-geom", seed, n, kind, d)

            def compute(build=build, d=d, cell_seed=cell_seed) -> MaxLoadDistribution:
                maxima = []
                for ss in spawn_seed_sequences(cell_seed, trials):
                    rng = np.random.default_rng(ss)
                    space = build(rng)
                    maxima.append(place_balls(space, n, d, seed=rng).max_load)
                return MaxLoadDistribution.from_samples(maxima)

            spec_dict = {
                "kind": "ablation_geometry",
                "n": n,
                "geometry": kind,
                "d": d,
                "trials": trials,
                "seed": cell_seed,
            }
            cells[(kind, d)] = fetch_or_compute(spec_dict, compute, cache=store)
    return ExperimentReport(
        name="ablation_geometry",
        title=f"Ablation: bin geometry x d (n = m = {n})",
        cells=cells,
        row_keys=list(builders),
        col_keys=list(d_values),
        col_label=lambda d: f"d = {d}",
        row_label=str,
        meta={"n": n, "trials": trials, "seed": seed},
    )


def tiebreak_sweep(
    *,
    n: int = 2**12,
    d_values=(2, 3),
    trials: int = 100,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    engine: str = "auto",
    backend=None,
    threads=None,
    cache="auto",
) -> ExperimentReport:
    """Strategies x d grid at fixed n."""
    store = resolve_cache(cache)
    cells = {}
    for d in d_values:
        for name, (tiebreak, partitioned) in STRATEGIES.items():
            spec = CellSpec("ring", n, d, strategy=tiebreak, partitioned=partitioned)
            cells[(d, name)] = submit_cell(
                spec,
                trials,
                seed=stable_hash_seed("abl-tie", seed, n, d, name),
                n_jobs=n_jobs,
                engine=engine,
                backend=backend,
                threads=threads,
                cache=store,
            )
    return ExperimentReport(
        name="ablation_tiebreak",
        title=f"Ablation: tie-breaking strategies x d (ring, n = {n}, m = n)",
        cells=cells,
        row_keys=list(d_values),
        col_keys=list(STRATEGIES),
        col_label=str,
        row_label=lambda d: f"d={d}",
        meta={"n": n, "trials": trials, "seed": seed},
    )


def mn_sweep(
    *,
    n: int = 2**12,
    ratios=(1, 2, 4, 8),
    d_values=(1, 2),
    trials: int = 50,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    engine: str = "auto",
    backend=None,
    threads=None,
    cache="auto",
) -> ExperimentReport:
    """Max load vs m/n (the heavily loaded remark)."""
    store = resolve_cache(cache)
    cells = {}
    for r in ratios:
        for d in d_values:
            spec = CellSpec("ring", n, d, m=r * n)
            cells[(r, d)] = submit_cell(
                spec,
                trials,
                seed=stable_hash_seed("abl-mn", seed, n, r, d),
                n_jobs=n_jobs,
                engine=engine,
                backend=backend,
                threads=threads,
                cache=store,
            )
    return ExperimentReport(
        name="ablation_mn",
        title=f"Ablation: max load vs m/n (ring, n = {n})",
        cells=cells,
        row_keys=list(ratios),
        col_keys=list(d_values),
        col_label=lambda d: f"d = {d}",
        row_label=lambda r: f"m={r}n",
        meta={"n": n, "trials": trials, "seed": seed},
    )


def dimension_sweep(
    *,
    n: int = 2**10,
    dims=(1, 2, 3),
    d_values=(1, 2),
    trials: int = 50,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    engine: str = "auto",
    backend=None,
    threads=None,
    cache="auto",
) -> ExperimentReport:
    """Torus dimension sweep (the higher-dimension remark)."""
    store = resolve_cache(cache)
    cells = {}
    for dim in dims:
        for d in d_values:
            spec = CellSpec("torus", n, d, dim=dim)
            cells[(dim, d)] = submit_cell(
                spec,
                trials,
                seed=stable_hash_seed("abl-dim", seed, n, dim, d),
                n_jobs=n_jobs,
                engine=engine,
                backend=backend,
                threads=threads,
                cache=store,
            )
    return ExperimentReport(
        name="ablation_dim",
        title=f"Ablation: torus dimension (n = {n}, m = n)",
        cells=cells,
        row_keys=list(dims),
        col_keys=list(d_values),
        col_label=lambda d: f"d = {d}",
        row_label=lambda k: f"k={k}",
        meta={"n": n, "trials": trials, "seed": seed},
    )
