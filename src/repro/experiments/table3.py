"""Table 3: tie-breaking strategies on the ring at d = 2 (m = n).

The four columns (DESIGN.md records the interpretation):

* ``arc-larger`` — uniform choices, ties to the longer arc,
* ``arc-random`` — uniform choices, ties uniform (Theorem 1's model;
  shared with Table 1's d = 2 column),
* ``arc-left`` — Vöcking's Always-Go-Left: partitioned interval
  choices, ties to the lowest interval,
* ``arc-smaller`` — uniform choices, ties to the shorter arc (the
  paper's own heuristic; empirically the best).
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.stats.trials import CellSpec
from repro.sweeps.runner import resolve_cache, submit_cell
from repro.utils.rng import stable_hash_seed
from repro.utils.timing import Stopwatch

__all__ = ["run", "STRATEGIES", "DEFAULT_N_VALUES", "FULL_N_VALUES"]

#: column name -> (TieBreak value, partitioned sampling?)
STRATEGIES: dict[str, tuple[str, bool]] = {
    "arc-larger": ("larger", False),
    "arc-random": ("random", False),
    "arc-left": ("first", True),
    "arc-smaller": ("smaller", False),
}

DEFAULT_N_VALUES = (2**8, 2**12, 2**16)
FULL_N_VALUES = (2**8, 2**12, 2**16, 2**20, 2**24)


def run(
    *,
    trials: int = 100,
    n_values=None,
    strategies=None,
    d: int = 2,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    engine: str = "auto",
    backend=None,
    threads=None,
    cache="auto",
    full: bool = False,
) -> ExperimentReport:
    """Regenerate Table 3 (scaled by default; ``full=True`` for paper scale).

    ``engine`` and kernel ``backend`` are forwarded to :func:`repro.stats.trials.run_cell`;
    cells are cached through the sweep layer (``cache`` as in
    :func:`repro.sweeps.runner.resolve_cache`).
    """
    if n_values is None:
        n_values = FULL_N_VALUES if full else DEFAULT_N_VALUES
    if strategies is None:
        strategies = list(STRATEGIES)
    unknown = set(strategies) - set(STRATEGIES)
    if unknown:
        raise ValueError(f"unknown strategies {sorted(unknown)}")
    store = resolve_cache(cache)
    sw = Stopwatch()
    cells = {}
    for n in n_values:
        for name in strategies:
            tiebreak, partitioned = STRATEGIES[name]
            spec = CellSpec(
                "ring", n, d, strategy=tiebreak, partitioned=partitioned
            )
            with sw.lap(f"n={n} {name}"):
                cells[(n, name)] = submit_cell(
                    spec,
                    trials,
                    seed=stable_hash_seed("table3", seed, n, name, d),
                    n_jobs=n_jobs,
                    engine=engine,
                    backend=backend,
                    threads=threads,
                    cache=store,
                )
    return ExperimentReport(
        name="table3",
        title=(
            "Table 3: experimental maximum load varying strategies for "
            f"random arcs with d = {d} (m = n)"
        ),
        cells=cells,
        row_keys=list(n_values),
        col_keys=list(strategies),
        col_label=str,
        meta={"trials": trials, "seed": seed, "d": d, "seconds": round(sw.total, 2)},
    )
