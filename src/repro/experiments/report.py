"""The common result container for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.stats.distributions import MaxLoadDistribution
from repro.stats.tables import exponent_label, render_table

__all__ = ["ExperimentReport", "TextReport"]


@dataclass
class TextReport:
    """A non-grid experiment outcome: free-form lines plus raw data.

    Used by the lemma-validation and theory-check drivers whose output
    is not a max-load frequency grid.
    """

    name: str
    title: str
    lines: Sequence[str]
    data: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def render(self) -> str:
        header = self.title
        if self.meta:
            parts = ", ".join(f"{k}={v}" for k, v in self.meta.items())
            header = f"{header}\n({parts})"
        return header + "\n" + "\n".join(self.lines) + "\n"

    def summary_lines(self) -> list[str]:
        return [f"{self.name}: {line}" for line in self.lines]


@dataclass
class ExperimentReport:
    """A grid of max-load distributions plus provenance.

    Attributes
    ----------
    name:
        Experiment id (``table1``, ``fig1_lemma8``, ...).
    title:
        Human-readable heading used when rendering.
    cells:
        ``(row_key, col_key) -> MaxLoadDistribution``.
    row_keys, col_keys:
        Grid ordering (rows are usually ``n``; columns ``d`` or
        strategy names).
    meta:
        Free-form provenance: trials, seed, wall-clock, notes.
    """

    name: str
    title: str
    cells: Mapping[tuple, MaxLoadDistribution]
    row_keys: Sequence
    col_keys: Sequence
    col_label: Callable = str
    row_label: Callable = exponent_label
    meta: dict = field(default_factory=dict)

    def render(self, *, min_pct: float = 0.0) -> str:
        """Paper-style text rendering of the grid."""
        header = self.title
        if self.meta:
            parts = ", ".join(f"{k}={v}" for k, v in self.meta.items())
            header = f"{header}\n({parts})"
        return render_table(
            self.cells,
            self.row_keys,
            self.col_keys,
            title=header,
            row_label=self.row_label,
            col_label=self.col_label,
            min_pct=min_pct,
        )

    def modes(self) -> dict:
        """``(row, col) -> modal max load`` (the headline statistic)."""
        return {key: dist.mode for key, dist in self.cells.items()}

    def summary_lines(self) -> list[str]:
        """One line per cell: mode, mean, range — for EXPERIMENTS.md."""
        out = []
        for r in self.row_keys:
            for c in self.col_keys:
                dist = self.cells.get((r, c))
                if dist is None:
                    continue
                out.append(
                    f"{self.name} n={self.row_label(r)} {self.col_label(c)}: "
                    f"mode={dist.mode} mean={dist.mean:.2f} "
                    f"range=[{dist.min},{dist.max}] trials={dist.trials}"
                )
        return out
