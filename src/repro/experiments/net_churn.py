"""``net_churn``: overlay health under churn, measured message by message.

Every other experiment treats placement analytically; this one replays
churn-storm traces through the :mod:`repro.net` protocol simulator and
tabulates what the overlay actually delivers while unstable: lookup
hop counts (against the ``~½·log₂ n`` analytic expectation of the
stable ring), ring repair latency after abrupt deaths, replicated-key
load skew, and whether the ring-invariant checker finds an exact ring
once stabilization quiesces.

Cells are cached through the sweep-layer result cache keyed on the
full parameter record — a :func:`repro.net.driver.run_trace` run is
deterministic, so a cached payload is byte-identical to a recomputed
one (the determinism pin in ``tests/net`` relies on exactly that).
"""

from __future__ import annotations

import math

from repro.dynamics.events import churn_storm_trace
from repro.experiments.report import TextReport
from repro.net.driver import run_trace
from repro.net.simulator import NetConfig
from repro.sweeps.runner import resolve_cache
from repro.utils.rng import stable_hash_seed
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive_int

__all__ = ["run", "DEFAULT_PEERS", "FULL_PEERS"]

DEFAULT_PEERS = (64, 192)
FULL_PEERS = (64, 256, 1024)

#: storm shape (fractions of the peer count; see :func:`_cell_params`)
_WAVES = 2
_LEAVE_FRACTION = 0.1
_FINGERS = 24


def _cell_params(peers: int, seed: int) -> dict:
    """The full, cache-keying parameter record of one cell."""
    return {
        "kind": "net_churn",
        "peers": peers,
        "keys": 2 * peers,
        "waves": _WAVES,
        "leave_fraction": _LEAVE_FRACTION,
        "pairs_per_wave": max(1, peers // 8),
        "n_fingers": _FINGERS,
        "lookups_per_epoch": 16,
        "graceful_fraction": 0.5,
        "seed": seed,
    }


def _run_cell(params: dict) -> dict:
    """Replay one storm cell; returns the deterministic result payload."""
    trace = churn_storm_trace(
        params["peers"],
        params["keys"],
        waves=params["waves"],
        leave_fraction=params["leave_fraction"],
        pairs_per_wave=params["pairs_per_wave"],
        policy="random",
        seed=stable_hash_seed(params["seed"], "net-churn-trace"),
    )
    result = run_trace(
        trace,
        cfg=NetConfig(n_fingers=params["n_fingers"]),
        seed=params["seed"],
        graceful_fraction=params["graceful_fraction"],
        lookups_per_epoch=params["lookups_per_epoch"],
        check="full",
    )
    return result.to_payload()


def run(
    *,
    peers_values=None,
    seed: int = 20030206,
    cache="auto",
    full: bool = False,
) -> TextReport:
    """Overlay churn-storm sweep over ring sizes (``full=True`` scales up).

    Each cell replays a seeded storm (waves of abrupt/graceful
    departures and rejoins under standing replicated load) through
    :func:`repro.net.driver.run_trace` and reports measured hop
    counts, repair latency, load skew, and the invariant verdict.
    """
    if peers_values is None:
        peers_values = FULL_PEERS if full else DEFAULT_PEERS
    store = resolve_cache(cache)
    sw = Stopwatch()
    lines: list[str] = []
    data: dict = {}
    ring_ok_all = True
    for peers in peers_values:
        check_positive_int(peers, "peers")
        params = _cell_params(int(peers), seed)
        payload = None
        if store is not None:
            hit = store.get(params)
            if hit is not None:
                payload = hit["payload"]
        if payload is None:
            with sw.lap(f"peers={peers}"):
                payload = _run_cell(params)
            if store is not None:
                store.put(params, payload)
        data[int(peers)] = payload
        hops = payload["metrics"]["hops"]
        rep = payload["metrics"]["repair"]
        stats = (payload["invariants"] or {}).get("stats", {})
        ring_ok = (stats.get("succ_mismatch", 1) == 0
                   and stats.get("pred_mismatch", 1) == 0
                   and stats.get("finger_mismatch", 1) == 0)
        ring_ok_all &= ring_ok
        lost = stats.get("keys_lost", 0)
        checked = stats.get("keys_checked", 0)
        lines.append(
            f"n={peers:>6}: hops mean {hops['mean']:.2f} "
            f"(analytic ~{0.5 * math.log2(peers):.2f}) max {hops['max']}, "
            f"repair p99 {rep['p99']:.0f} ticks over {rep['count']} splices, "
            f"skew {payload['skew']['skew']:.2f}, "
            f"ring {'exact' if ring_ok else 'BROKEN'}, "
            f"keys {checked - lost}/{checked} "
            f"[{payload['meta']['messages']} msgs, digest {payload['digest'][:12]}]"
        )
    lines.append(
        "ring invariants: "
        + ("all exact after quiescence" if ring_ok_all
           else "VIOLATIONS FOUND (see payload)")
        + "; a storm wave may exceed the replication bound, so lost keys"
        " are reported, not asserted"
    )
    return TextReport(
        name="net_churn",
        title="Overlay churn storms: measured hops, repair latency, load skew",
        lines=lines,
        data=data,
        meta={"seed": seed, "peers": list(peers_values),
              "seconds": round(sw.total, 2)},
    )
