"""Table 2: maximum load with random Voronoi cells on the torus (m = n).

Same protocol as Table 1 but servers live on the unit 2-torus and bins
are their Voronoi cells; the paper sweeps ``n`` up to ``2^20``.
"""

from __future__ import annotations

from repro.experiments.report import ExperimentReport
from repro.stats.trials import CellSpec
from repro.sweeps.runner import resolve_cache, submit_cell
from repro.utils.rng import stable_hash_seed
from repro.utils.timing import Stopwatch

__all__ = ["run", "DEFAULT_N_VALUES", "FULL_N_VALUES", "D_VALUES"]

DEFAULT_N_VALUES = (2**8, 2**12, 2**14)
FULL_N_VALUES = (2**8, 2**12, 2**16, 2**20)
D_VALUES = (1, 2, 3, 4)


def run(
    *,
    trials: int = 100,
    n_values=None,
    d_values=D_VALUES,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    engine: str = "auto",
    backend=None,
    threads=None,
    cache="auto",
    full: bool = False,
    dim: int = 2,
) -> ExperimentReport:
    """Regenerate Table 2 (scaled by default; ``full=True`` for paper scale).

    ``dim`` other than 2 exercises the paper's higher-dimension remark
    (used by the ablation driver).  ``engine`` and kernel ``backend`` are forwarded to
    :func:`repro.stats.trials.run_cell`; cells are cached through the
    sweep layer (``cache`` as in
    :func:`repro.sweeps.runner.resolve_cache`).
    """
    if n_values is None:
        n_values = FULL_N_VALUES if full else DEFAULT_N_VALUES
    store = resolve_cache(cache)
    sw = Stopwatch()
    cells = {}
    for n in n_values:
        for d in d_values:
            spec = CellSpec("torus", n, d, dim=dim)
            with sw.lap(f"n={n} d={d}"):
                cells[(n, d)] = submit_cell(
                    spec,
                    trials,
                    seed=stable_hash_seed("table2", seed, n, d, dim),
                    n_jobs=n_jobs,
                    engine=engine,
                    backend=backend,
                    threads=threads,
                    cache=store,
                )
    return ExperimentReport(
        name="table2",
        title=(
            "Table 2: experimental maximum load with random torus "
            f"polygons (m = n, dim = {dim})"
        ),
        cells=cells,
        row_keys=list(n_values),
        col_keys=list(d_values),
        col_label=lambda d: f"d = {d}",
        meta={
            "trials": trials,
            "seed": seed,
            "dim": dim,
            "seconds": round(sw.total, 2),
        },
    )
