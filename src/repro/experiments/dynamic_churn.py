"""Dynamic churn experiment: the load guarantee along trajectories.

The paper's tables report the maximum load at the *end* of a static
placement.  This experiment replays four dynamic workload families on
the ring and tabulates the **peak** maximum load observed at any epoch
of the trajectory — the statistic a DHT operator actually cares about:

* ``steady`` — fixed occupancy ``m = n`` with random delete/insert
  turnover (the DHT at rest),
* ``poisson`` — M/M/∞ thinned arrivals/departures around mean ``n``,
* ``bursts`` — adversarial LIFO insert/delete storms over a standing
  base load,
* ``storm`` — waves of bin departures and rejoins under load (mass
  node failure and recovery).

Each cell is a distribution of peak max load over independent trials,
rendered in the paper's frequency-table format so dynamic columns read
side by side with the static Tables 1–3.
"""

from __future__ import annotations

import numpy as np

from repro.core.ring import RingSpace
from repro.dynamics.engine import simulate_dynamics
from repro.dynamics.events import (
    adversarial_burst_trace,
    churn_storm_trace,
    poisson_trace,
    steady_state_trace,
)
from repro.experiments.report import ExperimentReport
from repro.stats.distributions import MaxLoadDistribution
from repro.stats.trials import run_trial_map
from repro.sweeps.runner import fetch_or_compute, resolve_cache
from repro.utils.rng import stable_hash_seed
from repro.utils.timing import Stopwatch
from repro.utils.validation import check_positive_int

__all__ = ["run", "SCENARIOS", "DEFAULT_N_VALUES", "FULL_N_VALUES"]

#: column order of the report
SCENARIOS = ("steady", "poisson", "bursts", "storm")

DEFAULT_N_VALUES = (2**8, 2**10, 2**12)
FULL_N_VALUES = (2**8, 2**12, 2**16, 2**20)


def _trace_for(scenario: str, n: int, rng: np.random.Generator):
    """Build the scenario's trace, sized relative to ``n``."""
    if scenario == "steady":
        return steady_state_trace(n, pairs=n, policy="random", epochs=8, seed=rng)
    if scenario == "poisson":
        return poisson_trace(3 * n, n, policy="random", epochs=8, seed=rng)
    if scenario == "bursts":
        return adversarial_burst_trace(
            n, max(1, n // 4), rounds=4, policy="lifo", seed=rng
        )
    if scenario == "storm":
        return churn_storm_trace(
            n,
            n,
            waves=3,
            leave_fraction=0.1,
            pairs_per_wave=max(1, n // 8),
            policy="random",
            seed=rng,
        )
    raise ValueError(f"unknown scenario {scenario!r}; expected one of {SCENARIOS}")


def _peak_max_load(context: tuple[str, int, int], seed) -> int:
    """One trial: fresh ring, fresh trace, peak max load out."""
    scenario, n, d = context
    rng = np.random.default_rng(seed)
    space = RingSpace.random(n, seed=rng)
    trace = _trace_for(scenario, n, rng)
    result = simulate_dynamics(space, trace, d, seed=rng, engine="auto")
    return result.peak_max_load


def _run_scenario_cell(
    scenario: str, n: int, d: int, trials: int, seed, n_jobs: int | None
) -> MaxLoadDistribution:
    """Distribution of per-trial trajectory peaks for one (scenario, n, d)."""
    peaks = run_trial_map(_peak_max_load, (scenario, n, d), trials, seed, n_jobs=n_jobs)
    return MaxLoadDistribution.from_samples(peaks)


def run(
    *,
    trials: int = 25,
    n_values=None,
    scenarios=None,
    d: int = 2,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    cache="auto",
    full: bool = False,
) -> ExperimentReport:
    """Peak max load along dynamic trajectories (``full=True`` scales n up).

    Cells are cached through the sweep layer under a
    ``dynamic_churn``-kind spec (``cache`` as in
    :func:`repro.sweeps.runner.resolve_cache`), so repeated runs with
    identical parameters replay from disk.
    """
    trials = check_positive_int(trials, "trials")
    if n_values is None:
        n_values = FULL_N_VALUES if full else DEFAULT_N_VALUES
    if scenarios is None:
        scenarios = list(SCENARIOS)
    unknown = set(scenarios) - set(SCENARIOS)
    if unknown:
        raise ValueError(f"unknown scenarios {sorted(unknown)}")
    store = resolve_cache(cache)
    sw = Stopwatch()
    cells = {}
    for n in n_values:
        for scenario in scenarios:
            cell_seed = stable_hash_seed("dynamic_churn", seed, n, scenario, d)
            spec_dict = {
                "kind": "dynamic_churn",
                "scenario": scenario,
                "n": n,
                "d": d,
                "trials": trials,
                "seed": cell_seed,
            }
            with sw.lap(f"n={n} {scenario}"):
                cells[(n, scenario)] = fetch_or_compute(
                    spec_dict,
                    lambda scenario=scenario, n=n, cell_seed=cell_seed: (
                        _run_scenario_cell(scenario, n, d, trials, cell_seed, n_jobs)
                    ),
                    cache=store,
                )
    return ExperimentReport(
        name="dynamic_churn",
        title=(
            "Dynamic churn: peak maximum load over the trajectory "
            f"(ring, d = {d}, occupancy ≈ n)"
        ),
        cells=cells,
        row_keys=list(n_values),
        col_keys=list(scenarios),
        col_label=str,
        meta={"trials": trials, "seed": seed, "d": d, "seconds": round(sw.total, 2)},
    )
