"""Theory-vs-simulation: do the paper's predictions track reality?

Compares, per (n, d):

* the simulated geometric max load (mode over trials),
* the simulated uniform (ABKU) max load — Theorem 1 says these match,
* the fluid-limit prediction (conclusion's differential-equation
  pointer; exact only for uniform bins),
* Theorem 1's leading term ``log log n / log d``,
* the practical layered-induction predictor,
* Vöcking's bound for the Always-Go-Left variant.
"""

from __future__ import annotations

from repro.baselines.vocking import vocking_bound
from repro.experiments.report import TextReport
from repro.stats.trials import CellSpec
from repro.sweeps.runner import resolve_cache, submit_cell, submit_profile
from repro.theory.fluid import fluid_limit_tails, fluid_predicted_max_load
from repro.theory.recursion import (
    practical_predicted_max_load,
    theorem1_leading_term,
)
from repro.utils.rng import stable_hash_seed

__all__ = ["run"]


def _profile_section(n: int, d: int, trials: int, seed, store=None) -> list[str]:
    """Compare empirical tail fractions s_i = nu_i / n with the ODE.

    This is the paper-conclusion question made quantitative: the fluid
    limit is exact for uniform bins; how far off is it on the ring?
    """
    from repro.theory.weighted_fluid import weight_model_for, weighted_fluid_tails

    s = fluid_limit_tails(d, 1.0)
    weighted = {
        kind: weighted_fluid_tails(d, 1.0, weights=weight_model_for(kind))["s"]
        for kind in ("ring", "torus")
    }
    lines = [
        "",
        f"tail fractions s_i = nu_i / n at n={n}, d={d} "
        f"({trials} trials; wfluid = measure-weighted ODE):",
        f"  {'i':>3} {'fluid':>10} {'uniform':>10} "
        f"{'wfluid-ring':>12} {'ring':>10} {'wfluid-torus':>13} {'torus':>10}",
    ]
    profiles = {}
    for kind in ("uniform", "ring", "torus"):
        profiles[kind] = submit_profile(
            CellSpec(kind, n, d),
            trials,
            seed=stable_hash_seed("tc-prof", seed, kind, n, d),
            cache=store,
        )
    depth = min(6, max(p.size for p in profiles.values()))

    def sim(kind, i):
        p = profiles[kind]
        return p[i] / n if i < p.size else 0.0

    for i in range(1, depth):
        lines.append(
            f"  {i:>3} {s[i]:>10.3e} {sim('uniform', i):>10.3e} "
            f"{weighted['ring'][i]:>12.3e} {sim('ring', i):>10.3e} "
            f"{weighted['torus'][i]:>13.3e} {sim('torus', i):>10.3e}"
        )
    return lines


def run(
    *,
    n_values=(2**8, 2**12, 2**16),
    d_values=(2, 3, 4),
    trials: int = 50,
    seed: int = 20030206,
    n_jobs: int | None = 1,
    cache="auto",
) -> TextReport:
    """Tabulate predictions next to simulated modes.

    Simulation cells (including the ν-profiles, cached as NPZ arrays)
    go through the sweep layer's result cache; ``cache`` as in
    :func:`repro.sweeps.runner.resolve_cache`.
    """
    store = resolve_cache(cache)
    lines = [
        f"{'n':>8} {'d':>2} | {'ring':>5} {'torus':>5} {'unif':>5} | "
        f"{'fluid':>5} {'llog':>5} {'layer':>5} {'vock':>5}"
    ]
    data = {}
    for n in n_values:
        for d in d_values:
            ring = submit_cell(
                CellSpec("ring", n, d),
                trials,
                seed=stable_hash_seed("tc-ring", seed, n, d),
                n_jobs=n_jobs,
                cache=store,
            )
            torus = submit_cell(
                CellSpec("torus", n, d),
                trials,
                seed=stable_hash_seed("tc-torus", seed, n, d),
                n_jobs=n_jobs,
                cache=store,
            )
            unif = submit_cell(
                CellSpec("uniform", n, d),
                trials,
                seed=stable_hash_seed("tc-unif", seed, n, d),
                n_jobs=n_jobs,
                cache=store,
            )
            fluid = fluid_predicted_max_load(n, d)
            llog = theorem1_leading_term(n, d)
            layer = practical_predicted_max_load(n, d)
            vock = vocking_bound(n, d)
            data[(n, d)] = {
                "ring_mode": ring.mode,
                "torus_mode": torus.mode,
                "uniform_mode": unif.mode,
                "fluid": fluid,
                "leading_term": llog,
                "layered_predictor": layer,
                "vocking_bound": vock,
            }
            lines.append(
                f"{n:>8} {d:>2} | {ring.mode:>5} {torus.mode:>5} "
                f"{unif.mode:>5} | {fluid:>5} {llog:>5.2f} {layer:>5} "
                f"{vock:>5.2f}"
            )
    lines.append("")
    lines.append(
        "columns: simulated modes (ring / torus / uniform bins), fluid-"
        "limit prediction, log log n / log d, practical layered-"
        "induction predictor (upper-bound flavoured), Vöcking leading "
        "term"
    )
    profile_n = max(n_values)
    lines.extend(
        _profile_section(profile_n, 2, max(4, trials // 4), seed, store=store)
    )
    lines.append(
        "reading: the classical ODE is exact for uniform bins; the "
        "measure-weighted ODE (weights Exp(1) for arcs, Gamma(3.575) "
        "for Voronoi areas) recovers the geometric tails -- a "
        "numerical answer to the open problem in the paper's "
        "conclusion."
    )
    return TextReport(
        name="theory_vs_sim",
        title="Theory vs simulation: max-load predictions",
        lines=lines,
        data=data,
        meta={"trials": trials, "seed": seed},
    )
