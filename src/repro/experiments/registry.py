"""Registry mapping experiment ids (DESIGN.md section 3) to drivers.

The single source of truth for which experiments exist: the CLI
(:mod:`repro.experiments.__main__`), the run-everything harness
(:mod:`repro.experiments.run_all`), and the tests all resolve drivers
through :func:`get_experiment`.  A *driver* is a keyword-only callable
returning a report object with a ``render()`` method
(:class:`~repro.experiments.report.ExperimentReport` or
:class:`~repro.experiments.report.TextReport`).

Drivers are imported lazily inside :func:`_load` so that importing
:mod:`repro.experiments` stays cheap and cycle-free.  Every
table/ablation driver here submits its cells through the
:mod:`repro.sweeps` result cache, so repeated invocations with
identical parameters are incremental.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["get_experiment", "list_experiments"]


def _load() -> dict[str, Callable]:
    """Import all driver modules and return the id -> driver mapping."""
    from repro.experiments import (
        ablations,
        dynamic_churn,
        lemma_validation,
        net_churn,
        table1,
        table2,
        table3,
        theory_check,
    )

    return {
        "table1": table1.run,
        "table2": table2.run,
        "table3": table3.run,
        "fig1_lemma8": lemma_validation.run,
        "theory_vs_sim": theory_check.run,
        "dynamic_churn": dynamic_churn.run,
        "net_churn": net_churn.run,
        "ablation_tiebreak": ablations.tiebreak_sweep,
        "ablation_mn": ablations.mn_sweep,
        "ablation_dim": ablations.dimension_sweep,
        "ablation_geometry": ablations.geometry_sweep,
        "ablation_staleness": ablations.staleness_sweep,
    }


def list_experiments() -> list[str]:
    """All registered experiment ids, sorted alphabetically.

    Returns
    -------
    list of str
        Ids accepted by :func:`get_experiment` and by
        ``python -m repro.experiments <id>``.
    """
    return sorted(_load())


def get_experiment(name: str) -> Callable:
    """Driver callable for an experiment id.

    Parameters
    ----------
    name:
        One of the ids returned by :func:`list_experiments`.

    Returns
    -------
    Callable
        The driver; call it with keyword arguments (``trials=``,
        ``seed=``, ``cache=``, ...) to produce a report.

    Raises
    ------
    KeyError
        With the list of valid ids when the name is unknown.
    """
    registry = _load()
    if name not in registry:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(registry))}"
        )
    return registry[name]
