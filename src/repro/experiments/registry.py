"""Registry mapping experiment ids (DESIGN.md section 3) to drivers."""

from __future__ import annotations

from typing import Callable

__all__ = ["get_experiment", "list_experiments"]


def _load() -> dict[str, Callable]:
    from repro.experiments import (
        ablations,
        dynamic_churn,
        lemma_validation,
        table1,
        table2,
        table3,
        theory_check,
    )

    return {
        "table1": table1.run,
        "table2": table2.run,
        "table3": table3.run,
        "fig1_lemma8": lemma_validation.run,
        "theory_vs_sim": theory_check.run,
        "dynamic_churn": dynamic_churn.run,
        "ablation_tiebreak": ablations.tiebreak_sweep,
        "ablation_mn": ablations.mn_sweep,
        "ablation_dim": ablations.dimension_sweep,
        "ablation_geometry": ablations.geometry_sweep,
        "ablation_staleness": ablations.staleness_sweep,
    }


def list_experiments() -> list[str]:
    """All registered experiment ids."""
    return sorted(_load())


def get_experiment(name: str) -> Callable:
    """Driver callable for an experiment id.

    Raises
    ------
    KeyError
        With the list of valid ids when the name is unknown.
    """
    registry = _load()
    if name not in registry:
        raise KeyError(
            f"unknown experiment {name!r}; available: {', '.join(sorted(registry))}"
        )
    return registry[name]
