"""Shared utilities: deterministic RNG management, validation, timing.

These helpers exist so that every stochastic component in :mod:`repro`
draws randomness through a single, auditable channel
(:func:`repro.utils.rng.resolve_rng`, :func:`repro.utils.rng.spawn_rngs`)
and so that argument validation raises uniform, descriptive errors.
"""

from repro.utils.rng import resolve_rng, spawn_rngs, spawn_seed_sequences
from repro.utils.validation import (
    check_dimension,
    check_positive_int,
    check_probability,
    check_unit_interval,
)

__all__ = [
    "resolve_rng",
    "spawn_rngs",
    "spawn_seed_sequences",
    "check_dimension",
    "check_positive_int",
    "check_probability",
    "check_unit_interval",
]
