"""Uniform argument validation with descriptive errors.

Centralizing validation keeps the public API's failure behaviour
consistent: wrong types raise :class:`TypeError`, out-of-range values
raise :class:`ValueError`, and every message names the offending
parameter.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_unit_interval",
    "check_dimension",
    "as_float_array",
]


def check_positive_int(value: object, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_non_negative_int(value: object, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")
    return int(value)


def check_probability(value: object, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    try:
        v = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    if not 0.0 <= v <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {v}")
    return v


def check_unit_interval(value: object, name: str) -> float:
    """Validate that ``value`` lies in the half-open interval [0, 1)."""
    try:
        v = float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a real number, got {value!r}") from exc
    if not 0.0 <= v < 1.0:
        raise ValueError(f"{name} must be in [0, 1), got {v}")
    return v


def check_dimension(value: object, name: str = "dim") -> int:
    """Validate a spatial dimension (integer >= 1; we support constant k)."""
    d = check_positive_int(value, name)
    if d > 8:
        raise ValueError(
            f"{name}={d} is unsupported; the KD-tree substrate is intended "
            "for constant dimension (<= 8), matching the paper's remark"
        )
    return d


def as_float_array(values: object, name: str, ndim: int | None = None) -> np.ndarray:
    """Coerce to a float64 ndarray, validating finiteness and rank."""
    arr = np.asarray(values, dtype=np.float64)
    if ndim is not None and arr.ndim != ndim:
        raise ValueError(f"{name} must have ndim={ndim}, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite")
    return arr
