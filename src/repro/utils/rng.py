"""Deterministic random-number management.

Every stochastic entry point in :mod:`repro` accepts a ``seed`` argument
that may be ``None``, an integer, a :class:`numpy.random.SeedSequence`, or
an already-constructed :class:`numpy.random.Generator`.  This module
normalizes those inputs and provides deterministic *spawning* so that a
multi-trial experiment run serially or across a process pool produces
bit-identical results for a given master seed (DESIGN.md, decision 3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["resolve_rng", "spawn_rngs", "spawn_seed_sequences"]

SeedLike = "int | None | np.random.SeedSequence | np.random.Generator"


def resolve_rng(
    seed: int | None | np.random.SeedSequence | np.random.Generator = None,
) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed form.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an ``int``, a ``SeedSequence``, or a
        ``Generator`` (returned unchanged so callers can thread state).

    Examples
    --------
    >>> g = resolve_rng(7)
    >>> h = resolve_rng(7)
    >>> float(g.random()) == float(h.random())
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        "seed must be None, int, numpy.random.SeedSequence, or "
        f"numpy.random.Generator; got {type(seed).__name__}"
    )


def spawn_seed_sequences(
    seed: int | None | np.random.SeedSequence, n: int
) -> list[np.random.SeedSequence]:
    """Spawn ``n`` independent child seed sequences from a master seed.

    The children are independent streams in the hash-based SeedSequence
    tree, so trial ``i`` sees the same stream regardless of how many
    trials run or in which order/process they execute.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        base = seed
    else:
        base = np.random.SeedSequence(seed)
    return base.spawn(n)


def spawn_rngs(
    seed: int | None | np.random.SeedSequence, n: int
) -> list[np.random.Generator]:
    """Spawn ``n`` independent generators (one per trial/worker)."""
    return [np.random.default_rng(ss) for ss in spawn_seed_sequences(seed, n)]


def interleave_uniforms(
    rng: np.random.Generator, m: int, d: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pre-draw all randomness for one placement run.

    Returns ``(points, tiebreaks)`` where ``points`` has shape ``(m, d)``
    (candidate locations in [0, 1), consumed row by row in arrival order)
    and ``tiebreaks`` has shape ``(m,)`` (one uniform per ball used to
    resolve ties).  Pre-drawing in a fixed layout is what makes the
    batched engine bit-identical to the sequential reference
    (DESIGN.md, decision 1).
    """
    points = rng.random((m, d))
    tiebreaks = rng.random(m)
    return points, tiebreaks


def stable_hash_seed(*parts: Sequence[object]) -> int:
    """Derive a stable 63-bit seed from string-able parts.

    Used by experiment drivers to give each (table, n, d, strategy) cell
    its own deterministic stream without manual bookkeeping.
    """
    import hashlib

    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big") >> 1
