"""Lightweight timing helpers used by experiments and examples.

The HPC guide's first rule is "no optimization without measuring"; the
experiment drivers report wall-clock per cell so users can extrapolate
to paper-scale runs before launching them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Stopwatch", "timed"]


@dataclass
class Stopwatch:
    """Accumulating stopwatch with named laps.

    Examples
    --------
    >>> sw = Stopwatch()
    >>> with sw.lap("setup"):
    ...     pass
    >>> "setup" in sw.laps
    True
    """

    laps: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def lap(self, name: str):
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.laps[name] = self.laps.get(name, 0.0) + time.perf_counter() - start

    @property
    def total(self) -> float:
        return sum(self.laps.values())

    def format(self) -> str:
        if not self.laps:
            return "(no laps)"
        width = max(len(k) for k in self.laps)
        lines = [f"{k:<{width}}  {v:10.4f}s" for k, v in self.laps.items()]
        lines.append(f"{'total':<{width}}  {self.total:10.4f}s")
        return "\n".join(lines)


@contextmanager
def timed(label: str, sink=None):
    """Context manager printing (or collecting) elapsed wall time."""
    start = time.perf_counter()
    try:
        yield
    finally:
        elapsed = time.perf_counter() - start
        message = f"[{label}] {elapsed:.4f}s"
        if sink is None:
            print(message)
        else:
            sink(message)
