"""Run manifests: attribute every result file to code + environment.

A manifest is the JSON-able answer to "what produced this number?":
package version, git revision, python/numpy versions, platform, the
kernel backend auto-detection would pick, and every ``REPRO_*``
environment override in effect.  The sweep CLI writes one next to each
``--out`` artifact, the benchmark emitters embed one in
``BENCH_engine.json`` / ``BENCH_sweeps.json``, and the tracer drops
one beside each auto-flushed trace file — so any row in any tracked
result is machine-attributable.

:func:`run_manifest` is deliberately **deterministic given a pinned
environment**: no timestamps, no hostnames, no process ids (callers
that want a wall-clock stamp add their own field, as the benchmark
emitters do with ``unix_time``).  Two calls in the same interpreter
with the same environment return equal dictionaries — a property the
test suite pins down, because it is what makes manifests diffable
across runs.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path

__all__ = ["git_revision", "run_manifest", "write_manifest"]

#: Manifest schema version (bump on field changes).
SCHEMA = 1


def git_revision() -> str | None:
    """The git commit hash of the source tree, or ``None`` outside git.

    Resolved against the directory holding the installed ``repro``
    package first (the code that actually ran), falling back to the
    current working directory; any failure — no git binary, not a
    repository, permission trouble — degrades to ``None`` rather than
    raising.
    """
    for where in (Path(__file__).resolve().parent, Path.cwd()):
        try:
            out = subprocess.run(
                ["git", "-C", str(where), "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=10,
                check=False,
            )
        except (OSError, subprocess.SubprocessError):
            continue
        if out.returncode == 0:
            return out.stdout.strip()
    return None


def _cpu_topology() -> dict:
    """CPU topology (physical/logical cores, model) for the manifest.

    Thread-scaling numbers are uninterpretable without knowing the
    machine they ran on, so every manifest carries the topology the
    ``threads`` auto default derives from.  Lazy import for the same
    layering reason as :func:`_detected_backend`; failures degrade to
    an empty dict rather than raising.  Deterministic: the topology is
    cached per process.
    """
    try:
        from repro.kernels import cpu_topology

        return cpu_topology()
    except Exception:  # pragma: no cover - damaged platform probes only
        return {}


def _detected_backend() -> str:
    """Name of the kernel backend auto-detection would select.

    Probing may import numba or compile the C extension on first call
    (both cached per process); failures degrade to ``"unknown"``.
    Imported lazily so ``repro.obs`` never drags ``repro.kernels`` in
    at import time (``repro.kernels`` imports the metrics module).
    """
    try:
        from repro.kernels import default_backend

        return default_backend().name
    except Exception:  # pragma: no cover - damaged toolchain only
        return "unknown"


def run_manifest(extra: dict | None = None) -> dict:
    """Build the manifest dict for the current process/environment.

    ``extra`` entries are merged on top (and may override the defaults
    — e.g. a driver recording its master seed).  Deterministic given a
    pinned environment; see the module docstring.

    Examples
    --------
    >>> m = run_manifest({"seed": 7})
    >>> m["seed"], m["schema"]
    (7, 1)
    >>> run_manifest() == run_manifest()
    True
    """
    import numpy as np

    from repro._version import __version__

    manifest = {
        "schema": SCHEMA,
        "package": "repro",
        "version": __version__,
        "git_rev": git_revision(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "executable": sys.executable,
        "kernel_backend": _detected_backend(),
        "cpu": _cpu_topology(),
        "env": {
            key: value
            for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        },
    }
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(path: "Path | str", extra: dict | None = None) -> Path:
    """Write :func:`run_manifest` as pretty JSON to ``path``; returns it."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(run_manifest(extra), indent=2, sort_keys=True) + "\n")
    return path
