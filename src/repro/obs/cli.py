"""The ``obs`` subcommand of ``python -m repro.experiments``.

One verb so far::

    # aggregate trace JSONL into a per-phase time breakdown
    python -m repro.experiments obs report [TRACE.jsonl ...] [--dir DIR]

Without explicit files, every ``trace-*.jsonl`` under ``--dir`` (or
``REPRO_OBS_DIR``, or ``.repro-obs``) is aggregated.  The report shows
self-time per span name (percent of traced wall clock) followed by the
merged metric counters — kernel backend selections, cache hit/miss
splits, fused-engine repair counts.

Sweep progress/ETA for in-flight runs lives under
``python -m repro.experiments sweep status`` (same aggregation code,
:mod:`repro.obs.report`).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.obs.report import (
    aggregate_spans,
    format_breakdown,
    histogram_quantiles,
    merge_metrics,
    read_trace,
)

__all__ = ["build_parser", "main"]


def _default_dir() -> Path:
    env = os.environ.get("REPRO_OBS_DIR", "").strip()
    return Path(env) if env else Path(".repro-obs")


def build_parser() -> argparse.ArgumentParser:
    """The ``obs`` subcommand parser (currently the ``report`` verb)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs",
        description="Aggregate observability traces into phase breakdowns.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)
    report_p = sub.add_parser("report", help="per-phase time breakdown from traces")
    report_p.add_argument(
        "traces", nargs="*", metavar="TRACE.jsonl",
        help="trace files (default: trace-*.jsonl under --dir)",
    )
    report_p.add_argument(
        "--dir", type=Path, default=None,
        help="trace directory (default: REPRO_OBS_DIR or .repro-obs)",
    )
    report_p.add_argument(
        "--metrics", dest="metrics", action="store_true", default=True,
        help="include the merged metrics section (default)",
    )
    report_p.add_argument(
        "--no-metrics", dest="metrics", action="store_false",
        help="suppress the metrics section",
    )
    return parser


def _format_metrics(merged: dict) -> str:
    lines = []
    if merged["counters"]:
        lines.append("counters:")
        for key in sorted(merged["counters"]):
            value = merged["counters"][key]
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {key} = {shown}")
    if merged["gauges"]:
        lines.append("gauges:")
        for key in sorted(merged["gauges"]):
            lines.append(f"  {key} = {merged['gauges'][key]}")
    if merged["histograms"]:
        lines.append("histograms:")
        for key in sorted(merged["histograms"]):
            h = merged["histograms"][key]
            mean = h["total"] / h["count"] if h["count"] else 0.0
            line = (
                f"  {key}: count={h['count']} mean={mean:.4g} "
                f"min={h['min']:.4g} max={h['max']:.4g}"
            )
            p50, p95, p99 = histogram_quantiles(h, (0.5, 0.95, 0.99))
            if p50 is not None:
                line += f" p50={p50:.4g} p95={p95:.4g} p99={p99:.4g}"
            lines.append(line)
    return "\n".join(lines) if lines else "(no metrics)"


def main(argv=None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    # report
    paths = [Path(p) for p in args.traces]
    if not paths:
        trace_root = args.dir if args.dir is not None else _default_dir()
        paths = sorted(trace_root.glob("trace-*.jsonl"))
        if not paths:
            print(
                f"no trace files under {trace_root} "
                "(run with REPRO_OBS=1, or pass trace files explicitly)",
                file=sys.stderr,
            )
            return 2
    try:
        spans, metrics_records = read_trace(paths)
    except (OSError, ValueError) as exc:
        print(f"obs report failed: {exc}", file=sys.stderr)
        return 2
    print(f"traces: {', '.join(str(p) for p in paths)}")
    print(format_breakdown(aggregate_spans(spans)))
    if args.metrics:
        print()
        print(_format_metrics(merge_metrics(metrics_records)))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
