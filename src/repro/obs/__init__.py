"""``repro.obs``: structured tracing, metrics, and run manifests.

The observability layer the perf-critical tiers report into — cheap
always-on counters, opt-in span tracing, and reproducible run
manifests — so backend auto-selection, cache hit rates, fused-engine
conflict repair, and sweep progress surface in data instead of
anecdotes.

Three pieces (see ``docs/observability.md`` for the full catalog):

:mod:`repro.obs.metrics`
    Counters/gauges/histograms with a no-op fast path; the global
    on/off switch (``REPRO_OBS=1`` or :func:`configure` /
    :func:`obs_session`).
:mod:`repro.obs.tracing`
    Nested :func:`trace_span` phase timings, auto-flushed as JSONL
    trace files (plus a run manifest) into ``REPRO_OBS_DIR`` when
    enabled via the environment.
:mod:`repro.obs.manifest`
    :func:`run_manifest` — deterministic attribution (git rev,
    versions, kernel backend, ``REPRO_*`` env) embedded in benchmark
    emitters and written next to sweep artifacts.

**Invariant:** observability never changes results.  Instrumented code
paths only read clocks and bump counters; the ``tests/obs`` identity
suite and a CI leg assert bit-identical loads with ``REPRO_OBS=1``
versus a disabled run.

Usage::

    REPRO_OBS=1 python -m repro.experiments table1     # traces under .repro-obs/
    python -m repro.experiments obs report             # per-phase breakdown

or programmatically::

    from repro import obs
    with obs.obs_session(True):
        run_cell(spec, trials=100, seed=0)
    spans = obs.drain_spans()
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.manifest import git_revision, run_manifest, write_manifest
from repro.obs.metrics import (
    counter_add,
    enabled,
    gauge_set,
    histogram_observe,
    metric_key,
    reset_metrics,
    set_enabled,
    snapshot,
)
from repro.obs.tracing import (
    add_span,
    drain_spans,
    set_trace_dir,
    trace_dir,
    trace_span,
    write_trace,
)

__all__ = [
    "add_span",
    "configure",
    "counter_add",
    "drain_spans",
    "enabled",
    "gauge_set",
    "git_revision",
    "histogram_observe",
    "metric_key",
    "obs_session",
    "reset_metrics",
    "run_manifest",
    "set_enabled",
    "set_trace_dir",
    "snapshot",
    "trace_dir",
    "trace_span",
    "write_manifest",
    "write_trace",
]


def configure(enabled: bool | None = None, trace_dir=None) -> None:
    """Programmatic switchboard: flip the global state in one call.

    ``enabled`` toggles metrics + tracing; ``trace_dir`` points the
    auto-flusher at a directory (pass ``None`` positionally via
    :func:`set_trace_dir` to disable flushing — here ``None`` means
    "leave unchanged", matching ``enabled``).
    """
    if enabled is not None:
        set_enabled(enabled)
    if trace_dir is not None:
        set_trace_dir(trace_dir)


@contextmanager
def obs_session(obs: bool | None = None):
    """Scope the observability switch for one engine call.

    This is the ``obs=`` kwarg accepted by
    :func:`repro.stats.trials.run_cell`,
    :func:`repro.dynamics.engine.simulate_dynamics` and
    :func:`repro.sweeps.runner.run_sweep`:

    * ``None`` — leave the global state alone (the environment/default
      path; zero overhead);
    * ``True`` — enable for the duration, restoring the prior state on
      exit;
    * ``False`` — force-disable for the duration (e.g. to keep one
      noisy call out of an otherwise-traced run).
    """
    if obs is None:
        yield
        return
    previous = enabled()
    set_enabled(obs)
    try:
        yield
    finally:
        set_enabled(previous)
