"""Trace aggregation and sweep-progress math behind ``obs report``.

Pure functions over the JSONL records the tracer writes — no engine
imports, so both the ``obs report`` CLI and the ``sweep status``
subcommand (which shares :func:`progress_eta` /
:func:`format_progress`) stay dependency-light.

The per-phase breakdown works on **self time**: each span's duration
minus the durations of its direct children, summed per span name.
Self times of all spans partition the traced wall clock exactly (the
wall clock being the summed duration of depth-0 spans), so the
breakdown's percentages add up to 100% of what was traced — the
acceptance bar is that the traced phases cover ≥90% of the measured
wall time, which holds by construction whenever the root spans do.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "aggregate_spans",
    "format_breakdown",
    "format_progress",
    "histogram_quantiles",
    "merge_metrics",
    "progress_eta",
    "read_trace",
]

#: Mirrors :data:`repro.obs.metrics.NONPOSITIVE_BUCKET` (kept local so
#: this module stays import-free of the metrics registry).
_NONPOSITIVE_BUCKET = -(1 << 30)


def read_trace(paths: "Iterable[Path | str]") -> tuple[list[dict], list[dict]]:
    """Load trace JSONL files into ``(span_records, metrics_records)``.

    Unparseable lines raise ``ValueError`` naming the file and line —
    a truncated trace should be loud, not silently half-aggregated.
    Records of unknown ``type`` are ignored (forward compatibility).
    """
    spans: list[dict] = []
    metrics: list[dict] = []
    for path in paths:
        path = Path(path)
        with path.open(encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ValueError(f"{path}:{lineno}: bad trace line: {exc}") from None
                if record.get("type") == "span":
                    spans.append(record)
                elif record.get("type") == "metrics":
                    metrics.append(record)
    return spans, metrics


def aggregate_spans(spans: Sequence[dict]) -> dict:
    """Fold span records into a per-name breakdown plus totals.

    Returns ``{"wall_s", "span_count", "phases"}`` where ``phases``
    maps span name to ``{"count", "total_s", "self_s"}``; ``wall_s``
    is the summed duration of depth-0 spans and ``self_s`` is total
    minus direct-children time (clamped at zero against clock jitter).

    Examples
    --------
    >>> spans = [
    ...     {"id": 0, "parent": None, "depth": 0, "name": "run", "dur_s": 2.0},
    ...     {"id": 1, "parent": 0, "depth": 1, "name": "kernel", "dur_s": 1.5},
    ... ]
    >>> agg = aggregate_spans(spans)
    >>> agg["wall_s"], agg["phases"]["run"]["self_s"]
    (2.0, 0.5)
    """
    child_time: dict[tuple, float] = {}
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            key = (span.get("pid"), parent)
            child_time[key] = child_time.get(key, 0.0) + span["dur_s"]
    phases: dict[str, dict] = {}
    wall = 0.0
    for span in spans:
        if span.get("depth") == 0:
            wall += span["dur_s"]
        entry = phases.setdefault(
            span["name"], {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += span["dur_s"]
        entry["self_s"] += max(
            0.0, span["dur_s"] - child_time.get((span.get("pid"), span.get("id")), 0.0)
        )
    return {"wall_s": wall, "span_count": len(spans), "phases": phases}


def merge_metrics(records: Sequence[dict]) -> dict:
    """Combine per-process metrics records into one snapshot.

    Counters within one process are cumulative, so only the **last**
    record per pid contributes; across pids they sum.  Gauges keep the
    last value seen, histograms merge their summaries.
    """
    last_per_pid: dict = {}
    for record in records:
        last_per_pid[record.get("pid")] = record
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for record in last_per_pid.values():
        for key, value in record.get("counters", {}).items():
            counters[key] = counters.get(key, 0) + value
        gauges.update(record.get("gauges", {}))
        for key, summ in record.get("histograms", {}).items():
            into = histograms.get(key)
            if into is None:
                histograms[key] = dict(summ)
            else:
                into["count"] += summ["count"]
                into["total"] += summ["total"]
                into["min"] = min(into["min"], summ["min"])
                into["max"] = max(into["max"], summ["max"])
                # bucket counts sum; records predating the bucketed
                # format simply contribute none
                if summ.get("buckets"):
                    merged = dict(into.get("buckets") or {})
                    for idx, n in summ["buckets"].items():
                        merged[idx] = merged.get(idx, 0) + n
                    into["buckets"] = merged
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def histogram_quantiles(summary: dict, qs: Sequence[float]) -> list:
    """Estimate quantiles from a bucketed histogram summary.

    ``summary`` is one entry of a metrics snapshot (``count`` /
    ``min`` / ``max`` / ``buckets``).  Each quantile is located in the
    quarter-octave bucket holding its rank, interpolated
    logarithmically within the bucket, and clamped to the exact
    ``[min, max]`` the summary tracked.  Returns ``None`` per quantile
    when the summary is empty or predates the bucketed format.

    Examples
    --------
    >>> summ = {"count": 4, "min": 1.0, "max": 8.0,
    ...         "buckets": {"0": 1, "4": 1, "8": 1, "12": 1}}
    >>> [round(v, 2) for v in histogram_quantiles(summ, [0.0, 1.0])]
    [1.0, 8.0]
    """
    count = summary.get("count", 0)
    buckets = summary.get("buckets") or {}
    if not count or not buckets:
        return [None] * len(qs)
    lo_clip, hi_clip = summary["min"], summary["max"]
    items = sorted((int(idx), n) for idx, n in buckets.items())
    out = []
    for q in qs:
        target = q * count
        cum = 0
        value = hi_clip
        for idx, n in items:
            prev, cum = cum, cum + n
            if cum >= target:
                if idx == _NONPOSITIVE_BUCKET:
                    value = lo_clip
                else:
                    frac = (target - prev) / n if n else 0.0
                    value = 2.0 ** ((idx - 1 + frac) / 4)
                break
        out.append(min(max(value, lo_clip), hi_clip))
    return out


def format_breakdown(aggregate: dict) -> str:
    """Render :func:`aggregate_spans` output as an aligned text table.

    Phases are sorted by self time, largest first; percentages are of
    the traced wall clock (depth-0 span time).
    """
    wall = aggregate["wall_s"]
    phases = aggregate["phases"]
    if not phases:
        return "(no spans)"
    rows = sorted(phases.items(), key=lambda kv: -kv[1]["self_s"])
    width = max(len("phase"), max(len(name) for name in phases))
    lines = [
        f"{'phase':<{width}}  {'count':>7}  {'total s':>10}  {'self s':>10}  {'% wall':>7}"
    ]
    for name, entry in rows:
        pct = 100.0 * entry["self_s"] / wall if wall > 0 else 0.0
        lines.append(
            f"{name:<{width}}  {entry['count']:>7}  {entry['total_s']:>10.4f}  "
            f"{entry['self_s']:>10.4f}  {pct:>6.1f}%"
        )
    covered = sum(e["self_s"] for e in phases.values())
    pct = 100.0 * covered / wall if wall > 0 else 0.0
    lines.append(
        f"{'(traced wall)':<{width}}  {'':>7}  {wall:>10.4f}  {covered:>10.4f}  {pct:>6.1f}%"
    )
    return "\n".join(lines)


def progress_eta(done: int, total: int, mtimes: Sequence[float]) -> dict:
    """Progress + ETA estimate from cache-entry modification times.

    ``mtimes`` are the on-disk timestamps of the ``done`` finished
    cells (any order).  The rate is estimated from the span of those
    timestamps — ``(done - 1)`` completions over ``max - min`` seconds
    — which needs no knowledge of when the sweep started and is robust
    to warm cells that all share one old timestamp burst.  Returns
    ``{"done", "total", "remaining", "rate_per_s", "eta_s"}`` with
    ``None`` rate/ETA when fewer than two samples exist (or when done
    == total, where the ETA is 0).

    Examples
    --------
    >>> out = progress_eta(3, 5, [100.0, 110.0, 120.0])
    >>> out["remaining"], out["rate_per_s"], out["eta_s"]
    (2, 0.1, 20.0)
    """
    done = int(done)
    total = int(total)
    remaining = total - done
    out: dict = {
        "done": done,
        "total": total,
        "remaining": remaining,
        "rate_per_s": None,
        "eta_s": None,
    }
    if remaining == 0:
        out["eta_s"] = 0.0
    if len(mtimes) >= 2:
        span = max(mtimes) - min(mtimes)
        if span > 0:
            rate = (len(mtimes) - 1) / span
            out["rate_per_s"] = round(rate, 6)
            if remaining:
                out["eta_s"] = round(remaining / rate, 3)
    return out


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def format_progress(progress: dict, *, hits: int | None = None) -> str:
    """One status line from :func:`progress_eta` output.

    ``hits`` (cells served warm from the cache, vs computed) adds the
    hit/miss split the ``sweep status`` subcommand reports.
    """
    done, total = progress["done"], progress["total"]
    pct = 100.0 * done / total if total else 100.0
    bits = [f"{done}/{total} cells done ({pct:.1f}%)"]
    if hits is not None:
        bits.append(f"{hits} warm / {done - hits} computed this run")
    if progress["eta_s"] is not None:
        bits.append(
            "done" if progress["remaining"] == 0
            else f"ETA {_fmt_seconds(progress['eta_s'])}"
        )
        if progress["rate_per_s"]:
            bits.append(f"{progress['rate_per_s'] * 60:.1f} cells/min")
    elif progress["remaining"]:
        bits.append("ETA unknown (need >= 2 finished cells)")
    return ", ".join(bits)
