"""Span tracer: nested phase timings emitted as JSONL trace files.

:func:`trace_span` is a context manager threaded through the engines
(``run_cell`` / ``run_fused`` / ``simulate_dynamics`` / ``run_sweep``).
When observability is disabled it returns a shared no-op object — no
allocation, no clock reads — so the instrumentation can stay wired
through the hot paths permanently.  When enabled, each span records

* its ``name`` and free-form ``attrs``,
* wall-clock start (``t_wall``, unix seconds) and duration (``dur_s``,
  from ``perf_counter``),
* its ``id``, ``parent`` id and nesting ``depth`` (per-thread stack).

Finished spans accumulate in an in-process buffer.  When the outermost
span of a thread closes and a trace directory is configured (the
``REPRO_OBS_DIR`` environment variable, or
:func:`repro.obs.configure`), the buffer is flushed to
``trace-<pid>.jsonl`` in that directory — one JSON object per line,
``{"type": "span", ...}`` records followed by one
``{"type": "metrics", ...}`` snapshot — and a ``manifest-<pid>.json``
run manifest is written next to it once per process.  Without a trace
directory the buffer just grows until :func:`drain_spans` or
:func:`write_trace` collects it (the programmatic/testing mode).

Hot loops that cannot afford a context manager per iteration time
themselves with raw ``perf_counter`` arithmetic and report the total
via :func:`add_span` — a pre-measured child span attached to whatever
span is currently open.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.obs import metrics as _metrics

__all__ = [
    "add_span",
    "drain_spans",
    "set_trace_dir",
    "trace_dir",
    "trace_span",
    "write_trace",
]

_lock = threading.Lock()
_finished: list[dict] = []
_next_id = 0
_local = threading.local()

#: Trace output directory (``None`` = buffer only, no auto-flush).
_trace_dir: Path | None = (
    Path(os.environ["REPRO_OBS_DIR"])
    if os.environ.get("REPRO_OBS_DIR", "").strip()
    else (Path(".repro-obs") if _metrics.enabled() else None)
)

#: Whether this process already wrote its manifest next to the trace.
_manifest_written = False


def _stack() -> list[int]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = _local.stack = []
    return stack


def trace_dir() -> Path | None:
    """The directory traces auto-flush to (``None`` = buffering only)."""
    return _trace_dir


def set_trace_dir(path: "Path | str | None") -> None:
    """Point auto-flushing at ``path`` (``None`` disables auto-flush)."""
    global _trace_dir, _manifest_written
    _trace_dir = None if path is None else Path(path)
    _manifest_written = False


class _NullSpan:
    """The shared do-nothing span returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        """No-op."""
        return self

    def __exit__(self, *exc) -> bool:
        """No-op; never swallows exceptions."""
        return False


_NULL = _NullSpan()


class _Span:
    """A live span: records timing on exit and maintains the stack."""

    __slots__ = ("name", "attrs", "id", "parent", "depth", "t_wall", "_t0")

    def __init__(self, name: str, attrs: dict):
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        """Open the span: assign an id and push onto the thread stack."""
        global _next_id
        stack = _stack()
        with _lock:
            self.id = _next_id
            _next_id += 1
        self.parent = stack[-1] if stack else None
        self.depth = len(stack)
        stack.append(self.id)
        self.t_wall = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        """Close the span: record it and flush if the stack emptied."""
        dur = time.perf_counter() - self._t0
        stack = _stack()
        stack.pop()
        record = {
            "type": "span",
            "id": self.id,
            "parent": self.parent,
            "depth": self.depth,
            "name": self.name,
            "t_wall": round(self.t_wall, 6),
            "dur_s": dur,
            "attrs": self.attrs,
            "pid": os.getpid(),
        }
        with _lock:
            _finished.append(record)
        if not stack and _trace_dir is not None:
            _flush_to_dir()
        return False


def trace_span(name: str, **attrs):
    """Context manager timing one named phase (no-op when disabled).

    Examples
    --------
    >>> from repro.obs import metrics
    >>> with trace_span("demo", n=4):
    ...     pass
    """
    if not _metrics.enabled():
        return _NULL
    return _Span(name, attrs)


def add_span(name: str, dur_s: float, **attrs) -> None:
    """Record a pre-measured span under the currently open span.

    For hot loops that accumulate ``perf_counter`` deltas themselves
    instead of opening a context manager per iteration.  No-op when
    observability is disabled.
    """
    if not _metrics.enabled():
        return
    global _next_id
    stack = _stack()
    record = {
        "type": "span",
        "id": None,
        "parent": stack[-1] if stack else None,
        "depth": len(stack),
        "name": name,
        "t_wall": round(time.time(), 6),
        "dur_s": dur_s,
        "attrs": attrs,
        "pid": os.getpid(),
    }
    with _lock:
        record["id"] = _next_id
        _next_id += 1
        _finished.append(record)


def drain_spans() -> list[dict]:
    """Return and clear the buffered span records (oldest first)."""
    with _lock:
        out = list(_finished)
        _finished.clear()
    return out


def write_trace(path: "Path | str | None" = None) -> Path:
    """Flush buffered spans (+ a metrics snapshot) to a JSONL file.

    ``path=None`` appends to ``trace-<pid>.jsonl`` in the configured
    trace directory (which must then be set).  Returns the file
    written.  The buffer is cleared; metrics are left accumulating.
    """
    if path is None:
        if _trace_dir is None:
            raise ValueError("no trace path given and no trace directory configured")
        path = _trace_dir / f"trace-{os.getpid()}.jsonl"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    spans = drain_spans()
    records = spans + [
        {"type": "metrics", "pid": os.getpid(), **_metrics.snapshot()}
    ]
    with path.open("a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def _flush_to_dir() -> None:
    """Auto-flush on root-span close: trace JSONL + once-per-process manifest."""
    global _manifest_written
    write_trace()
    if not _manifest_written:
        from repro.obs.manifest import write_manifest

        write_manifest(_trace_dir / f"manifest-{os.getpid()}.json")
        _manifest_written = True


def _reset() -> None:
    """Drop buffered spans and per-thread stacks (test hook)."""
    global _next_id
    with _lock:
        _finished.clear()
        _next_id = 0
    _local.stack = []
