"""Near-zero-overhead metrics registry: counters, gauges, histograms.

This module owns the package-global observability switch.  Every
recording function begins with ``if not _enabled: return`` against a
plain module-level bool, so a disabled process pays one attribute load
and one branch per call — cheap enough to leave the instrumentation
permanently wired through the hot engines (the ``tests/obs`` overhead
suite pins this down).

The switch is initialized from the ``REPRO_OBS`` environment variable
(``1``/``true``/``on``/``yes`` enable) and can be flipped at runtime
with :func:`set_enabled` or scoped with
:func:`repro.obs.obs_session`.

Metric model (deliberately tiny — this is a single-process library,
not a telemetry product):

* **counters** are monotonically increasing floats/ints;
* **gauges** hold the last value set;
* **histograms** keep a running summary (count/total/min/max) plus
  log-spaced bucket counts, not the raw observations — enough for the
  ``obs report`` aggregation (including p50/p95/p99 estimates via
  :func:`repro.obs.report.histogram_quantiles`) without unbounded
  memory.  Buckets are quarter-octave (base ``2**0.25``, four per
  doubling), so quantile estimates carry at most ~9% relative error
  while a histogram spanning twenty orders of magnitude still holds
  only a few hundred buckets.

Metrics are keyed by name plus optional labels, rendered canonically
as ``name{k=v,...}`` with label keys sorted, so snapshots are stable
dictionaries ready for JSON.
"""

from __future__ import annotations

import math
import os
import threading

__all__ = [
    "NONPOSITIVE_BUCKET",
    "bucket_index",
    "counter_add",
    "enabled",
    "gauge_set",
    "histogram_observe",
    "metric_key",
    "reset_metrics",
    "set_enabled",
    "snapshot",
]

#: Environment values meaning "observability on".
_TRUTHY = {"1", "true", "on", "yes"}

#: The global switch (module-level for the cheapest possible check).
_enabled = os.environ.get("REPRO_OBS", "").strip().lower() in _TRUTHY

#: Bucket index for observations ``<= 0`` (log buckets need ``v > 0``).
NONPOSITIVE_BUCKET = -(1 << 30)

_lock = threading.Lock()
_counters: dict[str, float] = {}
_gauges: dict[str, float] = {}
#: key -> [count, total, min, max, {bucket_index: count}]
_histograms: dict[str, list] = {}


def bucket_index(value: float) -> int:
    """Quarter-octave bucket index for one observation.

    Bucket ``i`` covers ``(2**((i-1)/4), 2**(i/4)]``; non-positive
    values land in the :data:`NONPOSITIVE_BUCKET` sentinel.

    Examples
    --------
    >>> bucket_index(1.0), bucket_index(2.0), bucket_index(2.001)
    (0, 4, 5)
    """
    if value <= 0:
        return NONPOSITIVE_BUCKET
    return math.ceil(4 * math.log2(value))


def enabled() -> bool:
    """Whether observability is currently on for this process."""
    return _enabled


def set_enabled(on: bool) -> None:
    """Flip the global observability switch (see also ``obs_session``)."""
    global _enabled
    _enabled = bool(on)


def metric_key(name: str, labels: dict | None = None) -> str:
    """Canonical registry key: ``name`` or ``name{k=v,...}`` (keys sorted).

    Examples
    --------
    >>> metric_key("cache.hit")
    'cache.hit'
    >>> metric_key("backend", {"name": "numba"})
    'backend{name=numba}'
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def counter_add(name: str, value: float = 1, **labels) -> None:
    """Increment a counter (no-op unless observability is enabled)."""
    if not _enabled:
        return
    key = metric_key(name, labels)
    with _lock:
        _counters[key] = _counters.get(key, 0) + value


def gauge_set(name: str, value: float, **labels) -> None:
    """Set a gauge to ``value`` (no-op unless observability is enabled)."""
    if not _enabled:
        return
    key = metric_key(name, labels)
    with _lock:
        _gauges[key] = value


def histogram_observe(name: str, value: float, **labels) -> None:
    """Record one observation into a running summary (no-op when disabled)."""
    if not _enabled:
        return
    key = metric_key(name, labels)
    bucket = bucket_index(value)
    with _lock:
        entry = _histograms.get(key)
        if entry is None:
            _histograms[key] = [1, value, value, value, {bucket: 1}]
        else:
            entry[0] += 1
            entry[1] += value
            entry[2] = min(entry[2], value)
            entry[3] = max(entry[3], value)
            buckets = entry[4]
            buckets[bucket] = buckets.get(bucket, 0) + 1


def snapshot() -> dict:
    """JSON-able snapshot of every metric recorded so far.

    Histogram entries expand to ``{"count", "total", "min", "max",
    "buckets"}`` — bucket indices stringified for JSON — and the
    result is safe to embed in a trace file or manifest.
    """
    with _lock:
        return {
            "counters": dict(_counters),
            "gauges": dict(_gauges),
            "histograms": {
                key: {
                    "count": c,
                    "total": t,
                    "min": lo,
                    "max": hi,
                    "buckets": {str(i): n for i, n in sorted(b.items())},
                }
                for key, (c, t, lo, hi, b) in _histograms.items()
            },
        }


def reset_metrics() -> None:
    """Drop every recorded metric (test/CLI hook; the switch is untouched)."""
    with _lock:
        _counters.clear()
        _gauges.clear()
        _histograms.clear()
