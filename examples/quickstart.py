#!/usr/bin/env python
"""Quickstart: the power of two choices on geometric spaces.

Runs the paper's core experiment at a small size: place n items on n
servers arranged on a ring (consistent hashing) and on a 2-D torus, and
watch the maximum load collapse from Theta(log n) to log log n / log d
as soon as each item gets a second choice.

Usage::

    python examples/quickstart.py [n]
"""

import sys

from repro import RingSpace, TorusSpace, place_balls
from repro.baselines.uniform import UniformSpace
from repro.theory.fluid import fluid_predicted_max_load
from repro.theory.recursion import theorem1_leading_term


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 14
    print(f"n = {n} servers, m = {n} items\n")

    spaces = {
        "ring (random arcs)": RingSpace.random(n, seed=1),
        "torus (Voronoi cells)": TorusSpace.random(n, seed=2),
        "uniform bins (ABKU)": UniformSpace(n),
    }

    header = f"{'space':<24}" + "".join(f"d={d:<6}" for d in (1, 2, 3, 4))
    print(header)
    print("-" * len(header))
    for name, space in spaces.items():
        row = f"{name:<24}"
        for d in (1, 2, 3, 4):
            res = place_balls(space, n, d, seed=100 + d)
            row += f"{res.max_load:<8}"
        print(row)

    print()
    print("theory (d >= 2):")
    for d in (2, 3, 4):
        print(
            f"  d={d}: log log n / log d = {theorem1_leading_term(n, d):.2f}, "
            f"fluid-limit prediction = {fluid_predicted_max_load(n, d)}"
        )
    print(
        "\nReading: the d=1 column grows with n (rerun with a larger n!) "
        "while d>=2 stays flat -- Theorem 1's geometric power of two "
        "choices."
    )


if __name__ == "__main__":
    main()
