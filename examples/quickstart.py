#!/usr/bin/env python
"""Quickstart: the power of two choices on geometric spaces, cached.

Runs the paper's core experiment as a small sweep grid: place n items
on n servers arranged on a ring (consistent hashing), a 2-D torus, and
uniform bins, at d in {1, 2, 3, 4} choices, several trials per cell —
and watch the maximum load collapse from Theta(log n) to
log log n / log d as soon as each item gets a second choice.

The grid goes through ``repro.sweeps``: the first run simulates every
cell, a re-run replays from the content-addressed result cache in
milliseconds (delete the cache dir, or set ``REPRO_SWEEP_CACHE=off``,
to recompute).  See docs/sweeps.md for the full guide.

Usage::

    python examples/quickstart.py [n]
"""

import sys
import time

from repro.sweeps import SweepGrid, run_sweep
from repro.theory.fluid import fluid_predicted_max_load
from repro.theory.recursion import theorem1_leading_term

D_VALUES = (1, 2, 3, 4)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 12
    trials = 10
    grid = SweepGrid(
        space=("ring", "torus", "uniform"),
        n=n,
        d=D_VALUES,
        trials=trials,
        name="quickstart",
    )
    print(f"n = {n} servers, m = {n} items, {trials} trials per cell\n")

    start = time.perf_counter()
    result = run_sweep(grid)
    elapsed = time.perf_counter() - start
    hits, misses = result.meta["hits"], result.meta["misses"]

    cells = result.by_axes(row="space", col="d")
    header = f"{'space':<24}" + "".join(f"d={d:<6}" for d in D_VALUES)
    print(header)
    print("-" * len(header))
    labels = {
        "ring": "ring (random arcs)",
        "torus": "torus (Voronoi cells)",
        "uniform": "uniform bins (ABKU)",
    }
    for space in grid.space:
        row = f"{labels[space]:<24}"
        for d in D_VALUES:
            row += f"{cells[(space, d)].mode:<8}"
        print(row)

    print()
    print("theory (d >= 2):")
    for d in (2, 3, 4):
        print(
            f"  d={d}: log log n / log d = {theorem1_leading_term(n, d):.2f}, "
            f"fluid-limit prediction = {fluid_predicted_max_load(n, d)}"
        )
    print(
        f"\n[{elapsed:.2f}s: {misses} cells simulated, {hits} served from "
        "the result cache — run me again]"
    )
    print(
        "Reading: the d=1 column grows with n (rerun with a larger n!) "
        "while d>=2 stays flat -- Theorem 1's geometric power of two "
        "choices."
    )


if __name__ == "__main__":
    main()
