#!/usr/bin/env python
"""Two choices under churn: the paper's open systems question, measured.

The paper's conclusion flags "how to apply [two choices] while
maintaining reliability" as future work.  This example equips the Chord
substrate with successor lists (the standard reliability mechanism),
fails progressively larger random fractions of the network, and
measures:

* lookup availability and hop inflation (routing detours), and
* how the two-choice load balance looks when failed nodes hand their
  items to their live successors.

Usage::

    python examples/churn_resilience.py [n_servers]
"""

import sys

import numpy as np

from repro.dht.chord import ChordRing
from repro.dht.hashing import multi_hash
from repro.dht.resilience import ResilientChord
from repro.dht.workload import generate_keys


def surviving_loads(rc: ResilientChord, keys, d: int) -> np.ndarray:
    """Re-place keys on the live network with d-choice insertion."""
    loads = np.zeros(rc.ring.n, dtype=np.int64)
    for key in keys:
        owners = [rc.live_owner(int(i)) for i in multi_hash(key, d)]
        best = min(owners, key=lambda o: loads[o])
        loads[best] += 1
    live = loads[rc.alive]
    return live


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    keys = generate_keys(10 * n, seed=1)
    print(f"{n} servers, {len(keys)} keys, successor lists of length "
          f"{ResilientChord(ChordRing.random(n, seed=0)).r}\n")

    print(f"{'failed':>8} {'avail':>7} {'hops':>6} "
          f"{'max d=1':>8} {'max d=2':>8}")
    print("-" * 42)
    for frac in (0.0, 0.1, 0.25, 0.5):
        rc = ResilientChord(ChordRing.random(n, seed=0))
        fail_count = int(frac * n)
        if fail_count:
            report = rc.churn_episode(fail_count, lookups=300, seed=42)
            avail, hops = report.availability, report.mean_hops
        else:
            avail, hops = 1.0, float("nan")
        max1 = surviving_loads(rc, keys, d=1).max()
        max2 = surviving_loads(rc, keys, d=2).max()
        print(f"{fail_count:>8} {avail:>7.2%} {hops:>6.1f} "
              f"{max1:>8} {max2:>8}")

    print(
        "\nReading: successor lists keep lookups available through heavy "
        "failures, and the two-choice balance advantage persists as "
        "failed nodes shed load onto their live successors (d=2 max "
        "stays well below d=1 max at every failure level)."
    )


if __name__ == "__main__":
    main()
