#!/usr/bin/env python
"""Scaling demonstration: "system size scales into the millions".

The paper's abstract promises simulations with millions of items and
servers; this script delivers them on a laptop via the vectorized
engine.  Default sweep reaches n = 2^20 (~1M); pass an exponent to go
to the paper's full 2^24 (~16.7M; a few minutes and ~2 GB).

Usage::

    python examples/scaling_demo.py [max_exponent]
"""

import sys
import time

from repro import RingSpace, place_balls
from repro.theory.recursion import theorem1_leading_term


def main() -> None:
    max_exp = int(sys.argv[1]) if len(sys.argv) > 1 else 20
    print(f"{'n':>10} {'d=1':>6} {'d=2':>6} {'d=3':>6} "
          f"{'loglog/log d (d=2)':>20} {'seconds':>9}")
    print("-" * 62)
    for exp in range(10, max_exp + 1, 2):
        n = 1 << exp
        start = time.perf_counter()
        ring = RingSpace.random(n, seed=exp)
        maxima = {}
        for d in (1, 2, 3):
            maxima[d] = place_balls(
                ring, n, d, seed=1000 + exp, engine="batched"
            ).max_load
        elapsed = time.perf_counter() - start
        print(
            f"{f'2^{exp}':>10} {maxima[1]:>6} {maxima[2]:>6} {maxima[3]:>6} "
            f"{theorem1_leading_term(n, 2):>20.2f} {elapsed:>9.2f}"
        )
    print(
        "\nReading: the d=1 column tracks Theta(log n); d>=2 crawls "
        "upward like log log n, exactly as in the paper's Table 1."
    )


if __name__ == "__main__":
    main()
