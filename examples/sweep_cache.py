#!/usr/bin/env python
"""Incremental sweeps: the content-addressed result cache at work.

Demonstrates the three behaviours that make the sweep layer useful for
large repeated workloads (docs/sweeps.md):

1. **cold vs warm** — the same grid re-run is served from disk,
   typically hundreds of times faster;
2. **incremental growth** — extending the grid (here: adding an ``n``
   column) only simulates the new cells;
3. **perturbation safety** — changing any parameter (one more trial)
   changes the content address and recomputes instead of serving
   stale results.

Everything runs against a throwaway cache directory, so this demo
never touches (or is polluted by) your real user cache.

Usage::

    python examples/sweep_cache.py
"""

import tempfile
import time

from repro.sweeps import ResultCache, SweepGrid, run_sweep


def timed(label: str, grid: SweepGrid, store: ResultCache):
    start = time.perf_counter()
    result = run_sweep(grid, cache=store)
    elapsed = time.perf_counter() - start
    print(
        f"{label:<34} {elapsed * 1000:8.1f} ms   "
        f"{result.meta['misses']:2d} simulated, {result.meta['hits']:2d} cached"
    )
    return result, elapsed


def main() -> None:
    grid = SweepGrid(n=(1 << 10, 1 << 11), d=(1, 2, 3), trials=20, name="demo")
    with tempfile.TemporaryDirectory(prefix="repro-sweep-demo-") as tmp:
        store = ResultCache(tmp)
        print(f"cache: {tmp}\n")

        _, cold = timed("cold run (empty cache)", grid, store)
        warm_result, warm = timed("warm re-run (same grid)", grid, store)
        print(f"{'':<34} -> warm speedup {cold / warm:,.0f}x\n")

        bigger = grid.with_(n=grid.n + (1 << 12,))
        timed("grown grid (+1 n column)", bigger, store)

        more_trials = grid.with_(trials=grid.trials + 1)
        timed("perturbed grid (21 trials)", more_trials, store)

        print(f"\ncache now holds {store.entry_count()} cell results")
        print("\nwarm-run table (modes match the cold run bit for bit):\n")
        print(warm_result.to_report(row="n", col="d").render())


if __name__ == "__main__":
    main()
