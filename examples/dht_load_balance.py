#!/usr/bin/env python
"""Chord DHT load balancing: plain vs virtual servers vs two choices.

Reproduces the systems argument of the paper's Section 1.1 (and its
companion IPTPS'03 paper [3]): in a Chord-style DHT,

* plain consistent hashing (one hash, no choices) is Theta(log n)
  imbalanced,
* Chord's virtual servers fix the imbalance at the cost of multiplying
  routing state by Theta(log n),
* the two-choices refinement fixes it with O(1) extra pointers and d
  routed lookups per insertion.

Usage::

    python examples/dht_load_balance.py [n_servers] [n_keys]
"""

import sys

import numpy as np

from repro.baselines.virtual_servers import VirtualServerRing
from repro.dht.chord import ChordRing
from repro.dht.twochoice import TwoChoiceDHT
from repro.dht.workload import generate_keys, zipf_lookups


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 256
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 10 * n
    print(f"{n} servers, {m} keys\n")
    keys = generate_keys(m, seed=42)

    # --- plain consistent hashing -------------------------------------
    plain = TwoChoiceDHT(ChordRing.random(n, seed=7), d=1, seed=8)
    for k in keys:
        plain.insert(k)

    # --- Chord virtual servers (d = 1, log n virtual nodes each) ------
    virtual = VirtualServerRing(n, seed=7)
    v_loads = virtual.place_items(m, d=1, seed=8)

    # --- two choices ---------------------------------------------------
    two = TwoChoiceDHT(ChordRing.random(n, seed=7), d=2, seed=8)
    for k in keys:
        two.insert(k)
    # serve a skewed read workload to measure lookup cost
    for k in zipf_lookups(keys, 2000, seed=9):
        two.lookup(k)

    rows = [
        ("plain (d=1)", plain.loads(), plain.ring.n, 0.0),
        ("virtual servers", v_loads, virtual.ring.n, 0.0),
        ("two choices (d=2)", two.loads(), two.ring.n, two.storage_overhead()),
    ]
    print(
        f"{'design':<20}{'max':>5}{'mean':>7}{'max/mean':>10}"
        f"{'ring entries':>14}{'ptr/key':>9}"
    )
    print("-" * 65)
    for name, loads, entries, ptr in rows:
        print(
            f"{name:<20}{loads.max():>5}{loads.mean():>7.1f}"
            f"{loads.max() / loads.mean():>10.2f}{entries:>14}{ptr:>9.2f}"
        )

    print(
        f"\nrouting: two-choice insert cost {two.stats.mean_insert_hops:.1f} "
        f"hops (d lookups), lookup cost {two.stats.mean_lookup_hops:.1f} "
        f"hops (1 lookup + redirects); log2(n) = {np.log2(n):.1f}"
    )
    print(
        "\nReading: two choices matches the virtual-server balance "
        "without the log-factor blowup in ring entries (finger state)."
    )


if __name__ == "__main__":
    main()
