#!/usr/bin/env python
"""The bank/ATM example: 2-D nearest-neighbor assignment with choices.

Paper, Section 1.1: a bank assigns each customer a "base" teller
machine — the machine nearest their home, or, with two choices, the
less loaded of the machines nearest home and work.  We run the model
with uniform demand (the analyzed case) and clustered demand (footnote
2's "highly non-uniform" caveat) to show the benefit survives.

Usage::

    python examples/atm_placement.py [n_machines] [n_customers]
"""

import sys

import numpy as np

from repro.geo2d.atm import AtmAssignmentModel
from repro.geo2d.pointsets import clustered_points, uniform_points


def run_case(model, home, work, label):
    one = model.assign(home, seed=5)
    two = model.assign(np.stack([home, work], axis=1), seed=5)
    smaller = model.assign(
        np.stack([home, work], axis=1), strategy="smaller", seed=5
    )
    print(f"{label}:")
    print(
        f"  home only (d=1)        max={one.max_load:>4}  "
        f"max/mean={one.imbalance:.2f}"
    )
    print(
        f"  home or work (d=2)     max={two.max_load:>4}  "
        f"max/mean={two.imbalance:.2f}"
    )
    print(
        f"  d=2, smaller-cell ties max={smaller.max_load:>4}  "
        f"max/mean={smaller.imbalance:.2f}"
    )
    print()


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 200
    m = int(sys.argv[2]) if len(sys.argv) > 2 else 20 * n
    print(f"{n} teller machines, {m} customers on the unit torus\n")

    model = AtmAssignmentModel(uniform_points(n, seed=0))

    run_case(
        model,
        uniform_points(m, seed=1),
        uniform_points(m, seed=2),
        "uniform demand (the analyzed model)",
    )
    run_case(
        model,
        clustered_points(m, n_clusters=6, spread=0.06, seed=3),
        clustered_points(m, n_clusters=6, spread=0.06, seed=4),
        "clustered demand (footnote 2: city neighborhoods)",
    )
    print(
        "Reading: two choices sharply reduces the worst machine's queue "
        "in both regimes; tie-breaking toward the smaller Voronoi cell "
        "(the paper's heuristic) shaves a bit more."
    )


if __name__ == "__main__":
    main()
