#!/usr/bin/env python
"""Predicting the whole load distribution: the conclusion's open problem.

The paper closes: "it would be an improvement if the theory could be
used to accurately predict the resulting load distribution.  In the
case of uniform bin sizes, this can be done quite well using methods
based on differential equations... It is not clear whether either of
these methods can be made to apply to this setting."

This example runs the package's answer: a *measure-weighted* fluid
limit where bins carry i.i.d. weights matching the geometry (Exp(1)
for ring arcs, Gamma(3.575) for Voronoi areas) and choices probe
proportionally to weight.  It prints the ODE's tail predictions next
to freshly simulated values for all three geometries.

Usage::

    python examples/fluid_prediction.py [n] [d]
"""

import sys

from repro.stats.trials import CellSpec, run_cell_profile
from repro.theory.fluid import fluid_limit_tails
from repro.theory.weighted_fluid import (
    weight_model_for,
    weighted_fluid_predicted_max_load,
    weighted_fluid_tails,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 13
    d = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    trials = 8
    print(f"n = m = {n}, d = {d}, {trials} simulation trials\n")

    classical = fluid_limit_tails(d, 1.0)
    rows = []
    for kind in ("uniform", "ring", "torus"):
        fluid = weighted_fluid_tails(d, 1.0, weights=weight_model_for(kind))["s"]
        sim = run_cell_profile(CellSpec(kind, n, d), trials, seed=9) / n
        rows.append((kind, fluid, sim))

    print(f"{'i':>3} {'classical':>11}", end="")
    for kind, _, _ in rows:
        print(f" {kind + ' ODE':>12} {kind + ' sim':>12}", end="")
    print()
    for i in range(1, 6):
        print(f"{i:>3} {classical[i]:>11.3e}", end="")
        for _, fluid, sim in rows:
            sim_val = sim[i] if i < sim.size else 0.0
            print(f" {fluid[i]:>12.3e} {sim_val:>12.3e}", end="")
        print()

    print("\npredicted max loads (largest i with n*s_i >= 1):")
    for kind in ("uniform", "ring", "torus"):
        pred = weighted_fluid_predicted_max_load(
            n, d, weights=weight_model_for(kind)
        )
        print(f"  {kind:<8} {pred}")
    print(
        "\nReading: one ODE family predicts the full load-tail profile "
        "of every geometry, including the ring's extra +1 maximum that "
        "the uniform theory misses -- a constructive answer to the "
        "paper's closing open problem (under the i.i.d.-weight "
        "idealization; see repro/theory/weighted_fluid.py)."
    )


if __name__ == "__main__":
    main()
