#!/usr/bin/env python
"""Tie-breaking strategies head to head (the paper's Table 3 + Section 4).

Compares, at d = 2 on the random-arc ring:

* random ties (Theorem 1's model),
* larger-arc ties (intuitively bad: feeds the big arcs),
* Vöcking's Always-Go-Left (partitioned choices, leftmost ties),
* smaller-arc ties (the paper's proposal — "performing even slightly
  better than Vöcking's scheme"; its exact analysis is the paper's
  open problem).

Usage::

    python examples/tie_breaking_comparison.py [n] [trials]
"""

import sys

from repro.experiments.table3 import STRATEGIES
from repro.stats.trials import CellSpec, run_cell


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1 << 12
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 200

    print(f"ring, n = m = {n}, d = 2, {trials} trials\n")
    results = {}
    for name, (strategy, partitioned) in STRATEGIES.items():
        spec = CellSpec("ring", n, 2, strategy=strategy, partitioned=partitioned)
        results[name] = run_cell(spec, trials, seed=hash(name) % 2**31)

    print(f"{'strategy':<14}{'mean max':>10}{'mode':>6}  distribution")
    print("-" * 60)
    for name in ("arc-larger", "arc-random", "arc-left", "arc-smaller"):
        dist = results[name]
        inline = ", ".join(
            f"{k}: {100 * v / dist.trials:.0f}%" for k, v in dist.counts.items()
        )
        print(f"{name:<14}{dist.mean:>10.2f}{dist.mode:>6}  {inline}")

    print(
        "\nReading: smaller-arc tie-breaking wins (paper Table 3); "
        "intuition: arcs with large loads tend to be long arcs, so "
        "pushing ties toward short arcs starves the future collision "
        "targets."
    )


if __name__ == "__main__":
    main()
