#!/usr/bin/env python
"""The load guarantee in time: inserts, deletes, and churn storms.

Theorem 1 bounds the max load of a one-shot placement.  A DHT never
does a one-shot placement: keys arrive and depart, servers fail and
recover.  This example runs two dynamic workloads at d = 1 versus
d = 2 and prints the per-epoch trajectory, showing that the two-choice
advantage is a property of the whole path, not just the endpoint:

* a fixed-occupancy steady state (every epoch turns over part of the
  key population), and
* a churn storm (waves of servers leave, displacing their keys onto
  survivors, then rejoin empty).

Usage::

    python examples/dynamic_churn.py [n_servers]
"""

import sys

from repro.core import RingSpace
from repro.dynamics import churn_storm_trace, simulate_dynamics, steady_state_trace


def show(title, trace, n, seed):
    print(f"\n{title}")
    print(f"{'epoch':>6} {'events':>8} {'total':>7} {'live':>6} "
          f"{'max d=1':>8} {'max d=2':>8}")
    print("-" * 48)
    one = simulate_dynamics(RingSpace.random(n, seed=seed), trace, d=1, seed=seed + 1)
    two = simulate_dynamics(RingSpace.random(n, seed=seed), trace, d=2, seed=seed + 1)
    for i in range(one.epochs):
        print(f"{i:>6} {int(one.epoch_ends[i]):>8} "
              f"{int(one.total_load_over_time[i]):>7} "
              f"{int(one.live_bins_over_time[i]):>6} "
              f"{int(one.max_load_over_time[i]):>8} "
              f"{int(two.max_load_over_time[i]):>8}")
    print(f"{'peak':>6} {'':>8} {'':>7} {'':>6} "
          f"{one.peak_max_load:>8} {two.peak_max_load:>8}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 1024

    steady = steady_state_trace(n, pairs=4 * n, policy="random", epochs=8, seed=7)
    show(f"steady state: occupancy pinned at m = n = {n}, "
         "4n delete/insert pairs", steady, n, seed=11)

    storm = churn_storm_trace(n, n, waves=3, leave_fraction=0.2,
                              pairs_per_wave=n // 4, seed=8)
    show(f"churn storm: 3 waves, 20% of {n} servers leave and rejoin",
         storm, n, seed=13)

    print(
        "\nReading: under steady turnover the d=2 trajectory stays flat "
        "where d=1 drifts to its Theta(log n) level, and even when churn "
        "waves dump displaced keys onto survivors the two-choice re-"
        "placement keeps the peak within a couple of balls of the static "
        "double-log bound."
    )


if __name__ == "__main__":
    main()
