"""Dynamic-engine throughput benchmarks (smoke scale).

Times the dynamic engines over the steady-state and churn-storm
workloads so the perf trajectory tracks the new subsystem from day
one: the batched engine's mixed-prefix vectorization versus the scalar
reference, trace generation, and the churn re-placement path.
"""

import pytest

from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.dynamics.engine import run_batched_dynamic, run_sequential_dynamic
from repro.dynamics.events import churn_storm_trace, steady_state_trace
from repro.utils.rng import resolve_rng

N = 1 << 14


@pytest.fixture(scope="module")
def dyn_ring():
    return RingSpace.random(N, seed=0)


@pytest.fixture(scope="module")
def steady_trace():
    return steady_state_trace(N, pairs=N, epochs=8, seed=1)


@pytest.fixture(scope="module")
def storm_trace():
    return churn_storm_trace(
        N, N, waves=2, leave_fraction=0.05, pairs_per_wave=N // 8, seed=2
    )


def test_batched_dynamic_steady(benchmark, dyn_ring, steady_trace):
    res = benchmark(
        lambda: run_batched_dynamic(
            dyn_ring, steady_trace, 2, TieBreak.RANDOM, resolve_rng(3)
        )
    )
    assert res.occupancy == N


def test_sequential_dynamic_steady(benchmark, dyn_ring):
    trace = steady_state_trace(N // 8, pairs=N // 8, epochs=4, seed=4)
    res = benchmark(
        lambda: run_sequential_dynamic(
            dyn_ring, trace, 2, TieBreak.RANDOM, resolve_rng(3)
        )
    )
    assert res.occupancy == N // 8


def test_batched_dynamic_churn_storm(benchmark, dyn_ring, storm_trace):
    res = benchmark(
        lambda: run_batched_dynamic(
            dyn_ring, storm_trace, 2, TieBreak.RANDOM, resolve_rng(5)
        )
    )
    assert res.occupancy == N


def test_steady_trace_generation(benchmark):
    trace = benchmark(lambda: steady_state_trace(N, pairs=N, epochs=8, seed=6))
    assert trace.num_events == 3 * N
