#!/usr/bin/env python
"""Engine throughput emitter: writes the tracked ``BENCH_engine.json``.

Measures balls-per-second for the three placement engines on the
paper's hot workload — many trials of a ring cell at ``d = 2`` — at
``n ∈ {2¹², 2¹⁶, 2²⁰}``, and records the fused-over-batched speedup.
This file seeds the repo's performance trajectory: re-run it after
engine work and commit the refreshed JSON.

Protocol notes (what makes the numbers comparable):

* all engines place balls into identical pre-built spaces with
  identical per-trial seeds, so they simulate the *same* process and
  their outputs cross-check bit-identically (verified at the smallest
  size on every run);
* each engine gets an untimed warm-up run (page faults, lazily built
  bucket tables) and the best of ``--repeats`` timed runs is kept —
  the shared-box noise here is easily ±15%;
* slow engines measure fewer trials / balls at the big sizes (the
  per-cell ``trials``/``batched_trials``/``sequential_balls`` fields
  record exactly how many each engine placed) — the statistic is
  per-ball throughput, which is trial-count independent, so the rows
  are directly comparable despite the differing trial counts;
* every measurement pins ``REPRO_KERNEL_BACKEND`` for its duration:
  the engine rows are pure-numpy (no compiled kernels sneaking into
  the ring lookup), and each kernel-backend row runs entirely under
  that backend.

Besides the three engines, the fused engine is measured once per
*kernel backend* available on the machine (``numpy`` reference, plus
``numba``/``cext`` when importable/compilable — see
:mod:`repro.kernels`), emitted under ``backends`` with the speedup
over the numpy reference, and once per *thread count* in
``THREAD_COUNTS`` per backend (``REPRO_NUM_THREADS`` pinned per
measurement), emitted under ``threads`` with the parallel efficiency
relative to the backend's own 1-thread row.  The embedded manifest's
``cpu`` field records the physical/logical core counts the scaling
numbers must be read against.

Usage::

    PYTHONPATH=src python benchmarks/run_benchmarks.py            # full
    PYTHONPATH=src python benchmarks/run_benchmarks.py --fast     # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core.engine import run_batched, run_sequential
from repro.core.multitrial import fused_trial_chunk, run_fused
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.kernels import available_backends
from repro.obs.manifest import run_manifest

D = 2
STRATEGY = TieBreak.RANDOM

#: Thread counts for the fused thread-scaling dimension.  Measured for
#: every backend regardless of the host's core count — the manifest's
#: ``cpu`` field records the topology, so a 4-thread row on a 1-core
#: box is interpretable (expected efficiency ~1/4), not misleading.
THREAD_COUNTS = (1, 2, 4)

#: (n, trials, batched_trials, sequential_balls) per measured cell.
#: Throughput is per-ball and trial-count independent, so the big-n
#: cell uses one fused chunk's worth of trials — keeping all spaces
#: (positions + bucket tables) resident stays well under 1 GB.
FULL_CELLS = (
    (1 << 12, 100, 100, 1 << 12),
    (1 << 16, 100, 100, 1 << 14),
    (1 << 20, 16, 4, 1 << 14),
)
FAST_CELLS = (
    (1 << 10, 16, 16, 1 << 10),
    (1 << 12, 16, 16, 1 << 11),
)


def _spaces_and_seeds(n: int, trials: int):
    return [RingSpace.random(n, seed=9000 + k) for k in range(trials)]


@contextmanager
def _pinned_backend(name: str):
    """Force one kernel backend for everything inside the block.

    The env var is the strongest selector (:mod:`repro.kernels`), so
    pinning it steers both the engine's ``backend=`` resolution and the
    kwarg-less call sites underneath (the ring bucket-table lookup) —
    a "numpy" measurement really is numpy all the way down.
    """
    prev = os.environ.get("REPRO_KERNEL_BACKEND")
    os.environ["REPRO_KERNEL_BACKEND"] = name
    try:
        yield
    finally:
        if prev is None:
            del os.environ["REPRO_KERNEL_BACKEND"]
        else:
            os.environ["REPRO_KERNEL_BACKEND"] = prev


@contextmanager
def _pinned_threads(count: int):
    """Force one kernel thread count for everything inside the block.

    ``REPRO_NUM_THREADS`` is the strongest selector
    (:func:`repro.kernels.resolve_threads`), so pinning it steers the
    fused engine's thread resolution without touching any kwargs — and
    keeps the single-thread rows honest on multicore hosts, where the
    auto default would otherwise parallelize them.
    """
    prev = os.environ.get("REPRO_NUM_THREADS")
    os.environ["REPRO_NUM_THREADS"] = str(count)
    try:
        yield
    finally:
        if prev is None:
            del os.environ["REPRO_NUM_THREADS"]
        else:
            os.environ["REPRO_NUM_THREADS"] = prev


def _time_best(fn, repeats: int) -> float:
    fn()  # warm-up: page faults, bucket tables, allocator reuse
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_cell(n, trials, batched_trials, sequential_balls, repeats, backends):
    spaces = _spaces_and_seeds(n, trials)

    def fused():
        # same memory-bounded trial chunking the stats layer applies
        # (a no-op below n = 2²⁰ at these trial counts)
        chunk = fused_trial_chunk(n, n, D)
        rngs = [np.random.default_rng(k) for k in range(trials)]
        for c0 in range(0, trials, chunk):
            run_fused(spaces[c0 : c0 + chunk], n, D, STRATEGY,
                      rngs[c0 : c0 + chunk])

    def batched():
        for k in range(batched_trials):
            run_batched(spaces[k], n, D, STRATEGY, np.random.default_rng(k))

    def sequential():
        run_sequential(spaces[0], sequential_balls, D, STRATEGY,
                       np.random.default_rng(0))

    with _pinned_backend("numpy"), _pinned_threads(1):
        timings = {
            "fused": (_time_best(fused, repeats), trials * n),
            "batched": (_time_best(batched, repeats), batched_trials * n),
            "sequential": (_time_best(sequential, repeats), sequential_balls),
        }
    engines = {
        name: {
            "seconds": round(seconds, 4),
            "balls": balls,
            "balls_per_s": round(balls / seconds, 1),
        }
        for name, (seconds, balls) in timings.items()
    }
    backend_rows = {"numpy": dict(engines["fused"])}
    for name in backends:
        if name == "numpy":
            continue
        with _pinned_backend(name), _pinned_threads(1):
            seconds = _time_best(fused, repeats)
        backend_rows[name] = {
            "seconds": round(seconds, 4),
            "balls": trials * n,
            "balls_per_s": round(trials * n / seconds, 1),
        }
    for row in backend_rows.values():
        row["speedup_over_numpy"] = round(
            row["balls_per_s"] / backend_rows["numpy"]["balls_per_s"], 2
        )
    thread_rows: dict[str, dict] = {}
    for name in backends:
        rows: dict[str, dict] = {}
        base = None
        for count in THREAD_COUNTS:
            with _pinned_backend(name), _pinned_threads(count):
                seconds = _time_best(fused, repeats)
            bps = trials * n / seconds
            if base is None:
                base = bps
            rows[str(count)] = {
                "seconds": round(seconds, 4),
                "balls_per_s": round(bps, 1),
                "speedup_over_1_thread": round(bps / base, 2),
                "parallel_efficiency": round(bps / base / count, 2),
            }
        thread_rows[name] = rows
    return {
        "n": n,
        "trials": trials,
        "batched_trials": batched_trials,
        "sequential_balls": sequential_balls,
        "engines": engines,
        "backends": backend_rows,
        "threads": thread_rows,
        "speedup_fused_over_batched": round(
            engines["fused"]["balls_per_s"] / engines["batched"]["balls_per_s"], 2
        ),
    }


def _cross_check(n: int, trials: int, backends) -> None:
    """Every engine × backend × thread count must produce identical
    loads (fail loudly)."""
    spaces = _spaces_and_seeds(n, trials)
    reference = None
    for name in backends:
        with _pinned_backend(name), _pinned_threads(1):
            rngs = [np.random.default_rng(k) for k in range(trials)]
            fused, _ = run_fused(spaces, n, D, STRATEGY, rngs)
        with _pinned_backend(name), _pinned_threads(max(THREAD_COUNTS)):
            rngs = [np.random.default_rng(k) for k in range(trials)]
            fused_mt, _ = run_fused(spaces, n, D, STRATEGY, rngs)
        if not np.array_equal(fused, fused_mt):
            raise AssertionError(
                f"threaded fused run diverges from serial under backend "
                f"{name!r} at n={n} — bit-identity broken, refusing to "
                "emit benchmark numbers"
            )
        if reference is None:
            reference = fused
            with _pinned_backend("numpy"):
                for k in range(trials):
                    batched, _ = run_batched(spaces[k], n, D, STRATEGY,
                                             np.random.default_rng(k))
                    if not np.array_equal(fused[k], batched):
                        raise AssertionError(
                            f"fused/batched divergence at n={n}, trial {k} — "
                            "bit-identity broken, refusing to emit benchmark "
                            "numbers"
                        )
        elif not np.array_equal(reference, fused):
            raise AssertionError(
                f"kernel backend {name!r} diverges from numpy at n={n} — "
                "bit-identity broken, refusing to emit benchmark numbers"
            )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small sizes, 1 repeat (CI smoke mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per engine (best kept); "
                             "default 3, or 1 with --fast")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_engine.json",
                        help="output path (default: repo-root BENCH_engine.json)")
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.fast else 3)
    cells = FAST_CELLS if args.fast else FULL_CELLS

    backends = ["numpy"] + [
        name for name, ok in available_backends().items()
        if ok and name != "numpy"
    ]
    print(f"kernel backends measured: {', '.join(backends)}")
    _cross_check(cells[0][0], min(8, cells[0][1]), backends)
    results = []
    for n, trials, batched_trials, sequential_balls in cells:
        cell = _measure_cell(
            n, trials, batched_trials, sequential_balls, repeats, backends
        )
        results.append(cell)
        f = cell["engines"]
        print(
            f"n=2^{n.bit_length() - 1}: fused {f['fused']['balls_per_s']:,.0f} "
            f"balls/s ({cell['trials']} trials), batched "
            f"{f['batched']['balls_per_s']:,.0f} ({cell['batched_trials']} "
            f"trials), sequential {f['sequential']['balls_per_s']:,.0f} "
            f"({cell['sequential_balls']} balls) "
            f"(fused/batched = {cell['speedup_fused_over_batched']}x)"
        )
        for name, row in cell["backends"].items():
            if name == "numpy":
                continue
            print(
                f"  fused[{name}]: {row['balls_per_s']:,.0f} balls/s "
                f"({row['speedup_over_numpy']}x over numpy)"
            )
        for name, rows in cell["threads"].items():
            scaling = ", ".join(
                f"{count}t={row['balls_per_s']:,.0f}/s "
                f"(eff {row['parallel_efficiency']})"
                for count, row in rows.items()
            )
            print(f"  threads[{name}]: {scaling}")

    payload = {
        "benchmark": "engine_throughput",
        "version": __version__,
        "mode": "fast" if args.fast else "full",
        "space": "ring",
        "d": D,
        "strategy": STRATEGY.value,
        "repeats": repeats,
        "kernel_backends": backends,
        "note": (
            "throughputs are balls/s and trial-count independent; engines "
            "place different trial counts per cell (see trials/"
            "batched_trials/sequential_balls). 'backends' rows rerun the "
            "fused engine under each kernel backend, REPRO_KERNEL_BACKEND "
            "pinned; 'engines' rows are pure numpy. Both are measured at "
            "REPRO_NUM_THREADS=1; 'threads' rows sweep the thread count "
            "per backend (parallel_efficiency = speedup / threads — "
            "interpret against manifest.cpu, a 4-thread row on a 1-core "
            "host cannot exceed efficiency ~0.25)."
        ),
        "thread_counts": list(THREAD_COUNTS),
        "unix_time": int(time.time()),
        "manifest": run_manifest(),
        "cells": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
