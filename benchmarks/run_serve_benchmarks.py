#!/usr/bin/env python
"""Serving-tier throughput emitter: writes the tracked ``BENCH_serve.json``.

Measures the online placement service (:mod:`repro.serve`) under its
target workload: a standing population of ``2**20`` keys on a
``2**16``-bin ring, then a Zipf-skewed steady-state stream (80%
lookups over a ``s = 1.1`` popularity law, 20% FIFO churn pairs) —
the DHT serving regime.  Each cell replays the *same* op stream
through a fresh server at one ``(kernel backend, micro-batch size)``
point and records sustained ops/s plus per-op decision-latency
p50/p95/p99 from the server's own block-level recorder (client-side
stream generation is excluded: the workload is materialized up front
by :func:`repro.serve.workload.zipf_replay_ops`).

Protocol notes (what makes the numbers comparable):

* every cell replays identical warm-up + op streams from one seed, so
  final load vectors must be bit-identical across all cells — checked
  before anything is emitted, and the blake2b digest is recorded;
* warm-up (populating the ``2**20`` keys) always runs micro-batched
  and is excluded from the timed stream via
  :meth:`~repro.serve.server.PlacementServer.reset_latency`;
* ``REPRO_KERNEL_BACKEND`` / ``REPRO_NUM_THREADS=1`` are pinned per
  measurement (same discipline as ``benchmarks/run_benchmarks.py``);
* each cell keeps the best of ``--repeats`` full passes (fresh server
  each time — the stream is stateful);
* ``speedup_over_batch1`` compares each batched cell against the
  batch=1 cell of the *same backend* — the micro-batching win the
  serving tier exists for.

Usage::

    PYTHONPATH=src python benchmarks/run_serve_benchmarks.py          # full
    PYTHONPATH=src python benchmarks/run_serve_benchmarks.py --fast   # CI smoke
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro._version import __version__
from repro.core.ring import RingSpace
from repro.kernels import available_backends
from repro.obs.manifest import run_manifest
from repro.serve import OP_INSERT, PlacementServer, zipf_replay_ops

D = 2
STRATEGY = "random"
SEED = 20040627  # SPAA'04
LOOKUP_FRACTION = 0.8
ZIPF_EXPONENT = 1.1
BATCH_SIZES = (1, 4096)
WARM_BATCH = 4096

#: (n_bins, standing_keys, steady_ops) for the measured grid.
FULL_SCALE = (1 << 16, 1 << 20, 1 << 18)
FAST_SCALE = (1 << 10, 1 << 13, 1 << 13)

sys.path.insert(0, str(Path(__file__).resolve().parent))
from run_benchmarks import _pinned_backend, _pinned_threads  # noqa: E402


def _build_streams(n, keys, ops):
    """(space, warm-up kinds/args, steady kinds/args) — shared by all cells."""
    space = RingSpace.random(n, seed=SEED)
    warm_kinds = np.full(keys, OP_INSERT, dtype=np.int8)
    warm_args = np.arange(keys, dtype=np.int64)
    kinds, args = zipf_replay_ops(
        keys,
        ops,
        lookup_fraction=LOOKUP_FRACTION,
        exponent=ZIPF_EXPONENT,
        seed=SEED + 1,
    )
    return space, warm_kinds, warm_args, kinds, args


def _run_once(space, warm, steady, backend, batch):
    """One full pass: warm-up (untimed) + steady stream (timed)."""
    warm_kinds, warm_args = warm
    kinds, args = steady
    with _pinned_backend(backend), _pinned_threads(1):
        server = PlacementServer(
            space, D, strategy=STRATEGY, seed=SEED + 2, max_batch=WARM_BATCH
        )
        server.submit_ids(warm_kinds, warm_args)
        server.max_batch = batch  # the knob under measurement
        server.reset_latency()
        server.submit_ids(kinds, args)
    return server.latency_stats(), server.loads.copy()


def _cell(space, warm, steady, backend, batch, repeats):
    best, loads = None, None
    for _ in range(repeats):
        stats, run_loads = _run_once(space, warm, steady, backend, batch)
        if loads is not None and not np.array_equal(loads, run_loads):
            raise AssertionError(
                "repeat runs diverged — bit-identity broken, refusing to "
                "emit benchmark numbers"
            )
        loads = run_loads
        if best is None or stats.ops_per_s > best.ops_per_s:
            best = stats
    row = {
        "backend": backend,
        "max_batch": batch,
        "ops": best.count,
        "seconds": round(best.total_s, 4),
        "ops_per_s": round(best.ops_per_s, 1),
        "mean_us": round(best.mean_s * 1e6, 3),
        "p50_us": round(best.p50_s * 1e6, 3),
        "p95_us": round(best.p95_s * 1e6, 3),
        "p99_us": round(best.p99_s * 1e6, 3),
        "max_us": round(best.max_s * 1e6, 3),
    }
    return row, loads


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small sizes, 1 repeat (CI smoke mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="full passes per cell (best kept); "
                             "default 2, or 1 with --fast")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_serve.json",
                        help="output path (default: repo-root BENCH_serve.json)")
    args = parser.parse_args(argv)
    repeats = args.repeats or (1 if args.fast else 2)
    n, keys, ops = FAST_SCALE if args.fast else FULL_SCALE

    backends = ["numpy"] + [
        name for name, ok in available_backends().items()
        if ok and name != "numpy"
    ]
    print(f"kernel backends measured: {', '.join(backends)}")
    print(f"n=2^{n.bit_length() - 1} bins, {keys:,} standing keys, "
          f"{ops:,} steady-state ops ({LOOKUP_FRACTION:.0%} Zipf lookups)")
    space, warm_kinds, warm_args, kinds, args_arr = _build_streams(n, keys, ops)
    print(f"steady stream expands to {kinds.size:,} events")

    cells = []
    reference_loads = None
    for backend in backends:
        base_ops_per_s = None
        for batch in BATCH_SIZES:
            row, loads = _cell(
                space, (warm_kinds, warm_args), (kinds, args_arr),
                backend, batch, repeats,
            )
            if reference_loads is None:
                reference_loads = loads
            elif not np.array_equal(reference_loads, loads):
                raise AssertionError(
                    f"cell ({backend}, batch={batch}) diverged from the "
                    "reference loads — bit-identity broken, refusing to "
                    "emit benchmark numbers"
                )
            if base_ops_per_s is None:
                base_ops_per_s = row["ops_per_s"]
            row["speedup_over_batch1"] = round(
                row["ops_per_s"] / base_ops_per_s, 2
            )
            cells.append(row)
            print(
                f"  {backend:>6} batch={batch:<5} {row['ops_per_s']:>12,.0f} ops/s  "
                f"p50={row['p50_us']}us p95={row['p95_us']}us "
                f"p99={row['p99_us']}us  ({row['speedup_over_batch1']}x over "
                f"batch=1)"
            )

    payload = {
        "benchmark": "serve_throughput",
        "version": __version__,
        "mode": "fast" if args.fast else "full",
        "space": "ring",
        "d": D,
        "strategy": STRATEGY,
        "seed": SEED,
        "n": n,
        "keys": keys,
        "steady_ops": ops,
        "events": int(kinds.size),
        "lookup_fraction": LOOKUP_FRACTION,
        "zipf_exponent": ZIPF_EXPONENT,
        "batch_sizes": list(BATCH_SIZES),
        "kernel_backends": backends,
        "repeats": repeats,
        "note": (
            "ops/s and per-op decision latency measured inside the submit "
            "path of PlacementServer.submit_ids (workload generation "
            "excluded); every cell replays the identical warm-up + "
            "Zipf/FIFO-churn stream, final loads cross-checked "
            "bit-identical (loads_blake2b). speedup_over_batch1 is "
            "against the same backend's batch=1 cell at "
            "REPRO_NUM_THREADS=1."
        ),
        "loads_blake2b": hashlib.blake2b(
            reference_loads.tobytes(), digest_size=16
        ).hexdigest(),
        "unix_time": int(time.time()),
        "manifest": run_manifest(),
        "cells": cells,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
