"""Benchmark + validation of the geometric machinery (Figure 1 / Lemmas).

Times toroidal Voronoi area computation, the six-sector census and the
spacing sampler, asserting the lemma invariants on the way (this is the
`fig1_lemma8` experiment's hot path).
"""

import numpy as np

from repro.geo2d.voronoi import monte_carlo_region_measures, toroidal_voronoi_areas
from repro.experiments.lemma_validation import _count_empty_sectors
from repro.theory.arcs import expected_arcs_at_least, sample_spacings
from repro.theory.voronoi_tails import expected_large_regions_bound

N = 2048


def test_voronoi_areas(benchmark):
    pts = np.random.default_rng(0).random((N, 2))
    areas = benchmark(toroidal_voronoi_areas, pts)
    assert areas.sum() == 1.0 or abs(areas.sum() - 1.0) < 1e-9


def test_monte_carlo_measures(benchmark):
    pts = np.random.default_rng(1).random((N, 2))
    mc = benchmark(monte_carlo_region_measures, pts, 100_000, 2)
    assert abs(mc.sum() - 1.0) < 1e-9


def test_empty_sector_census(benchmark):
    pts = np.random.default_rng(2).random((N, 2))
    rng = np.random.default_rng(3)
    z = benchmark(_count_empty_sectors, pts, 3.0, rng)
    # E[Z] bound from Lemma 8's chain, with generous single-instance slack
    assert z <= 1.5 * expected_large_regions_bound(3.0, N)


def test_spacing_sampler(benchmark):
    spacings = benchmark(sample_spacings, N, 200, 4)
    assert spacings.shape == (200, N)
    # Lemma 4's expectation, sanity-checked in passing
    mean_count = float((spacings >= 3.0 / N).sum(axis=1).mean())
    assert mean_count < 2 * expected_arcs_at_least(3.0, N, bound=True)
