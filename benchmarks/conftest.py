"""Shared benchmark configuration.

Benchmarks double as the experiment regeneration harness: each
``test_bench_table*`` module times representative cells of the paper's
tables at laptop scale and asserts the modal max load agrees with the
published value (the timing result is the throughput; the assertion is
the reproduction).  Paper-scale sweeps are run through
``python -m repro.experiments <table> --full``.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path, monkeypatch):
    """Keep benchmark runs away from the developer's sweep cache."""
    monkeypatch.setenv("REPRO_SWEEP_CACHE", str(tmp_path / "sweep-cache"))


@pytest.fixture(scope="session")
def bench_seed():
    return 20030206
