"""Benchmark + regeneration of Table 1 cells (ring, m = n).

Each benchmark times a batch of trials for one (n, d) cell; the
asserted mode reproduces the paper's published value for that cell.
"""

import pytest

from repro.experiments.paper_data import PAPER_TABLE1, paper_distribution
from repro.stats.trials import CellSpec, run_cell

TRIALS = 25


def _cell(n, d, seed):
    return run_cell(CellSpec("ring", n, d), TRIALS, seed=seed)


@pytest.mark.parametrize("d", [1, 2, 3, 4])
def test_table1_n256(benchmark, bench_seed, d):
    dist = benchmark(_cell, 2**8, d, bench_seed + d)
    paper_mode = paper_distribution(PAPER_TABLE1[2**8][d]).mode
    tolerance = 2 if d == 1 else 1
    assert abs(dist.mode - paper_mode) <= tolerance


@pytest.mark.parametrize("d", [1, 2, 3, 4])
def test_table1_n4096(benchmark, bench_seed, d):
    dist = benchmark(_cell, 2**12, d, bench_seed + 10 + d)
    paper_mode = paper_distribution(PAPER_TABLE1[2**12][d]).mode
    tolerance = 2 if d == 1 else 1
    assert abs(dist.mode - paper_mode) <= tolerance


def test_table1_n65536_d2(benchmark, bench_seed):
    """The paper's mid-size cell: mode 5 at n = 2^16, d = 2."""
    dist = benchmark.pedantic(
        lambda: run_cell(CellSpec("ring", 2**16, 2), 5, seed=bench_seed),
        rounds=3,
        iterations=1,
    )
    paper_mode = paper_distribution(PAPER_TABLE1[2**16][2]).mode
    assert abs(dist.mode - paper_mode) <= 1
