"""Benchmark + regeneration of Table 2 cells (torus, m = n)."""

import pytest

from repro.experiments.paper_data import PAPER_TABLE2, paper_distribution
from repro.stats.trials import CellSpec, run_cell

TRIALS = 25


def _cell(n, d, seed):
    return run_cell(CellSpec("torus", n, d), TRIALS, seed=seed)


@pytest.mark.parametrize("d", [1, 2, 3, 4])
def test_table2_n256(benchmark, bench_seed, d):
    dist = benchmark(_cell, 2**8, d, bench_seed + 20 + d)
    paper_mode = paper_distribution(PAPER_TABLE2[2**8][d]).mode
    tolerance = 2 if d == 1 else 1
    assert abs(dist.mode - paper_mode) <= tolerance


@pytest.mark.parametrize("d", [1, 2])
def test_table2_n4096(benchmark, bench_seed, d):
    dist = benchmark(_cell, 2**12, d, bench_seed + 30 + d)
    paper_mode = paper_distribution(PAPER_TABLE2[2**12][d]).mode
    tolerance = 2 if d == 1 else 1
    assert abs(dist.mode - paper_mode) <= tolerance
