"""Engine throughput benchmarks: the guide's "measure before optimizing".

Times the two engines and the geometry substrate primitives so
regressions in the vectorization are caught as numbers, not vibes.
"""

import numpy as np
import pytest

from repro.core.engine import run_batched, run_sequential
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.core.torus import TorusSpace
from repro.utils.rng import resolve_rng

N = 1 << 16


@pytest.fixture(scope="module")
def big_ring():
    return RingSpace.random(N, seed=0)


@pytest.fixture(scope="module")
def big_torus():
    return TorusSpace.random(N, seed=0)


def test_ring_batched_engine(benchmark, big_ring):
    loads = benchmark(
        lambda: run_batched(big_ring, N, 2, TieBreak.RANDOM, resolve_rng(1))[0]
    )
    assert loads.sum() == N


def test_ring_sequential_engine(benchmark, big_ring):
    m = N // 8  # the reference loop is ~1.5x slower; keep rounds short
    loads = benchmark(
        lambda: run_sequential(big_ring, m, 2, TieBreak.RANDOM, resolve_rng(1))[0]
    )
    assert loads.sum() == m


def test_torus_batched_engine(benchmark, big_torus):
    loads = benchmark(
        lambda: run_batched(big_torus, N, 2, TieBreak.RANDOM, resolve_rng(1))[0]
    )
    assert loads.sum() == N


def test_ring_assign_throughput(benchmark, big_ring):
    queries = np.random.default_rng(2).random(1 << 20)
    owners = benchmark(big_ring.assign, queries)
    assert owners.shape == queries.shape


def test_torus_assign_throughput(benchmark, big_torus):
    queries = np.random.default_rng(3).random((1 << 18, 2))
    owners = benchmark(big_torus.assign, queries)
    assert owners.shape == (queries.shape[0],)


def test_smaller_strategy_overhead(benchmark, big_ring):
    """Measure the cost of measure-aware tie-breaking."""
    loads = benchmark(
        lambda: run_batched(big_ring, N // 4, 2, TieBreak.SMALLER, resolve_rng(4))[0]
    )
    assert loads.sum() == N // 4
