"""Engine throughput benchmarks: the guide's "measure before optimizing".

Times the three engines (sequential reference, batched, trial-fused)
and the geometry substrate primitives so regressions in the
vectorization are caught as numbers, not vibes.  ``run_benchmarks.py``
in this directory turns the same engine comparison into the tracked
``BENCH_engine.json`` artifact.
"""

import numpy as np
import pytest

from repro.core.engine import run_batched, run_sequential
from repro.core.multitrial import run_fused
from repro.core.ring import RingSpace
from repro.core.strategies import TieBreak
from repro.core.torus import TorusSpace
from repro.utils.rng import resolve_rng

N = 1 << 16

#: Trials fused per benchmark round — enough to show the cross-trial
#: amortization without blowing up suite runtime.
FUSED_TRIALS = 8


@pytest.fixture(scope="module")
def big_ring():
    return RingSpace.random(N, seed=0)


@pytest.fixture(scope="module")
def big_torus():
    return TorusSpace.random(N, seed=0)


@pytest.fixture(scope="module")
def ring_fleet():
    return [RingSpace.random(N, seed=100 + k) for k in range(FUSED_TRIALS)]


def test_ring_batched_engine(benchmark, big_ring):
    loads = benchmark(
        lambda: run_batched(big_ring, N, 2, TieBreak.RANDOM, resolve_rng(1))[0]
    )
    assert loads.sum() == N


def test_ring_sequential_engine(benchmark, big_ring):
    m = N // 8  # the reference loop is ~1.5x slower; keep rounds short
    loads = benchmark(
        lambda: run_sequential(big_ring, m, 2, TieBreak.RANDOM, resolve_rng(1))[0]
    )
    assert loads.sum() == m


def test_torus_batched_engine(benchmark, big_torus):
    loads = benchmark(
        lambda: run_batched(big_torus, N, 2, TieBreak.RANDOM, resolve_rng(1))[0]
    )
    assert loads.sum() == N


def test_ring_assign_throughput(benchmark, big_ring):
    queries = np.random.default_rng(2).random(1 << 20)
    owners = benchmark(big_ring.assign, queries)
    assert owners.shape == queries.shape


def test_torus_assign_throughput(benchmark, big_torus):
    queries = np.random.default_rng(3).random((1 << 18, 2))
    owners = benchmark(big_torus.assign, queries)
    assert owners.shape == (queries.shape[0],)


def test_smaller_strategy_overhead(benchmark, big_ring):
    """Measure the cost of measure-aware tie-breaking."""
    loads = benchmark(
        lambda: run_batched(big_ring, N // 4, 2, TieBreak.SMALLER, resolve_rng(4))[0]
    )
    assert loads.sum() == N // 4


def test_ring_fused_engine(benchmark, ring_fleet):
    """All FUSED_TRIALS trials in one fused pass (the table hot path)."""

    def job():
        rngs = [resolve_rng(1 + k) for k in range(FUSED_TRIALS)]
        return run_fused(ring_fleet, N, 2, TieBreak.RANDOM, rngs)[0]

    loads = benchmark(job)
    assert loads.shape == (FUSED_TRIALS, N)
    assert loads.sum() == FUSED_TRIALS * N


def test_ring_batched_same_fleet(benchmark, ring_fleet):
    """The same workload as ``test_ring_fused_engine``, per-trial batched
    — the pairing whose ratio is the fused engine's raison d'être."""

    def job():
        total = 0
        for k, space in enumerate(ring_fleet):
            total += run_batched(space, N, 2, TieBreak.RANDOM, resolve_rng(1 + k))[
                0
            ].sum()
        return total

    total = benchmark(job)
    assert total == FUSED_TRIALS * N


def test_fused_equals_batched_fleet(ring_fleet):
    """Not a timing: the two paths above really run the same process."""
    rngs = [resolve_rng(1 + k) for k in range(FUSED_TRIALS)]
    fused, _ = run_fused(ring_fleet, N, 2, TieBreak.RANDOM, rngs)
    for k, space in enumerate(ring_fleet):
        batched, _ = run_batched(space, N, 2, TieBreak.RANDOM, resolve_rng(1 + k))
        assert np.array_equal(fused[k], batched)
