"""Benchmark + regeneration of Table 3 (tie-breaking strategies, d = 2).

Besides per-strategy timing, the module-scope assertion reproduces the
paper's strategy ordering: smaller <= left < random <= larger.
"""

import pytest

from repro.experiments.paper_data import PAPER_TABLE3, paper_distribution
from repro.experiments.table3 import STRATEGIES
from repro.stats.trials import CellSpec, run_cell

TRIALS = 30
N = 2**8


def _cell(strategy_name, seed):
    tiebreak, partitioned = STRATEGIES[strategy_name]
    spec = CellSpec("ring", N, 2, strategy=tiebreak, partitioned=partitioned)
    return run_cell(spec, TRIALS, seed=seed)


@pytest.mark.parametrize("name", list(STRATEGIES))
def test_table3_strategy(benchmark, bench_seed, name):
    dist = benchmark(_cell, name, bench_seed + hash(name) % 1000)
    paper_mode = paper_distribution(PAPER_TABLE3[N][name]).mode
    assert abs(dist.mode - paper_mode) <= 1


def test_table3_ordering(bench_seed):
    """The paper's Section 4 finding, regenerated (no timing)."""
    means = {
        name: _cell(name, bench_seed + 100 + i).mean
        for i, name in enumerate(STRATEGIES)
    }
    assert means["arc-smaller"] <= means["arc-random"] + 0.15
    assert means["arc-random"] <= means["arc-larger"] + 0.15
    assert means["arc-left"] <= means["arc-larger"] + 0.15
