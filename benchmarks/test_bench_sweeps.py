"""Sweep-layer benchmarks: cache reruns and orchestration overhead.

The headline check is the ISSUE-5 acceptance bar: a warm-cache table
rerun through :mod:`repro.sweeps` must be **>= 10x** faster than the
cold run that populated the cache.  The warm path is pure JSON reads
while the cold path simulates hundreds of thousands of ball
placements, so the bar holds with an order of magnitude to spare on
any hardware; ``run_sweep_benchmarks.py`` records the measured ratio
in the tracked ``BENCH_sweeps.json``.
"""

import time

import pytest

from repro.experiments.table1 import run as run_table1
from repro.sweeps import ResultCache, SweepGrid, run_sweep

GRID = SweepGrid(n=(1 << 10, 1 << 11), d=(1, 2), trials=20, name="bench")

TABLE1_KWARGS = dict(trials=20, n_values=(1 << 10, 1 << 11))


@pytest.fixture()
def store(tmp_path):
    return ResultCache(tmp_path / "cache")


def test_cold_sweep(benchmark, tmp_path):
    """Cold grid execution into a fresh cache every round."""
    counter = iter(range(10**6))

    def job():
        return run_sweep(GRID, cache=ResultCache(tmp_path / f"c{next(counter)}"))

    result = benchmark.pedantic(job, rounds=3, iterations=1, warmup_rounds=1)
    assert result.meta["misses"] == len(GRID)


def test_warm_sweep(benchmark, store):
    """Warm replays of a populated cache (the steady-state rerun path)."""
    run_sweep(GRID, cache=store)

    result = benchmark(lambda: run_sweep(GRID, cache=store))
    assert result.meta["misses"] == 0


def test_warm_cache_speedup_at_least_10x(store):
    """Acceptance: warm-cache table reruns >= 10x faster than cold."""
    t0 = time.perf_counter()
    cold = run_table1(cache=store, **TABLE1_KWARGS)
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = run_table1(cache=store, **TABLE1_KWARGS)
    warm_s = time.perf_counter() - t0

    assert {k: v.counts for k, v in warm.cells.items()} == {
        k: v.counts for k, v in cold.cells.items()
    }
    assert store.hits == len(cold.cells)
    assert cold_s / warm_s >= 10.0, (
        f"warm rerun only {cold_s / warm_s:.1f}x faster "
        f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
    )


def test_sharded_run_overhead(benchmark, store):
    """One shard of a 4-way split (orchestration cost scales with cells)."""
    run_sweep(GRID, cache=store)  # warm everything

    def job():
        return run_sweep(GRID, cache=store, shard_index=1, shard_count=4)

    result = benchmark(job)
    assert result.meta["hits"] == len(result)
