"""Benchmarks for the resilience layer and conflict-prefix primitive."""

import numpy as np
import pytest

from repro.core.engine import conflict_free_prefix
from repro.dht.chord import ChordRing
from repro.dht.resilience import ResilientChord


def test_conflict_free_prefix_large_batch(benchmark):
    """The batched engine's hot primitive at a realistic batch shape."""
    rng = np.random.default_rng(0)
    cand = rng.integers(0, 1 << 20, size=(2048, 2))
    prefix = benchmark(conflict_free_prefix, cand)
    assert 1 <= prefix <= 2048


def test_conflict_free_prefix_dense_conflicts(benchmark):
    """Small bin space: prefixes are short, the scalar fallback reigns."""
    rng = np.random.default_rng(1)
    cand = rng.integers(0, 64, size=(2048, 2))
    prefix = benchmark(conflict_free_prefix, cand)
    assert 1 <= prefix <= 64


@pytest.fixture(scope="module")
def failed_ring():
    rc = ResilientChord(ChordRing.random(512, seed=0))
    rc.fail_random(128, seed=1)
    rc.ring.finger_table()
    return rc


def test_lookup_under_failures(benchmark, failed_ring):
    rng = np.random.default_rng(2)
    live = np.nonzero(failed_ring.alive)[0]
    idents = rng.integers(0, 1 << 63, size=256).astype(np.uint64) * np.uint64(2)
    starts = rng.choice(live, size=256)

    def route_all():
        total = 0
        for ident, start in zip(idents, starts):
            total += failed_ring.lookup_live(int(ident), int(start)).hops
        return total / idents.size

    mean_hops = benchmark(route_all)
    assert mean_hops <= 4 * np.log2(512)
