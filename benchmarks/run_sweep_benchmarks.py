#!/usr/bin/env python
"""Sweep-cache benchmark emitter: writes the tracked ``BENCH_sweeps.json``.

Measures the cold-vs-warm wall clock of table reruns through the
:mod:`repro.sweeps` layer: *cold* runs simulate every cell into a
fresh content-addressed cache, *warm* runs replay the identical
parameterization from disk.  The headline statistic is the warm-cache
speedup — the ISSUE-5 acceptance bar is **>= 10x** — measured for

* ``table1`` — the paper's Table 1 driver resubmitting its cells, and
* ``sweep_grid`` — a generic ``run_sweep`` grid over (n, d).

Both paths verify that warm results equal cold results exactly before
any number is emitted, and that the warm pass was all cache hits.

Usage::

    PYTHONPATH=src python benchmarks/run_sweep_benchmarks.py          # full
    PYTHONPATH=src python benchmarks/run_sweep_benchmarks.py --fast   # CI smoke
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro._version import __version__
from repro.experiments.table1 import run as run_table1
from repro.obs.manifest import run_manifest
from repro.sweeps import ResultCache, SweepGrid, run_sweep

FULL_TABLE1 = dict(trials=50, n_values=(1 << 12, 1 << 14))
FAST_TABLE1 = dict(trials=10, n_values=(1 << 10, 1 << 11))
FULL_GRID = SweepGrid(n=(1 << 12, 1 << 13), d=(1, 2, 3), trials=40, name="bench")
FAST_GRID = SweepGrid(n=(1 << 10,), d=(1, 2), trials=10, name="bench")


def _counts(report) -> dict:
    return {str(k): v.counts for k, v in report.cells.items()}


def _measure_table1(kwargs: dict, cache_root: Path) -> dict:
    """Cold and warm table1 runs against one fresh cache."""
    store = ResultCache(cache_root)
    t0 = time.perf_counter()
    cold = run_table1(cache=store, **kwargs)
    cold_s = time.perf_counter() - t0
    stores = store.stores
    t0 = time.perf_counter()
    warm = run_table1(cache=store, **kwargs)
    warm_s = time.perf_counter() - t0
    if _counts(warm) != _counts(cold):
        raise AssertionError("warm table1 differs from cold — refusing to emit")
    if store.hits != stores:
        raise AssertionError(
            f"warm table1 missed the cache ({store.hits}/{stores} hits)"
        )
    return {
        "name": "table1",
        "cells": len(cold.cells),
        "trials": kwargs["trials"],
        "n_values": list(kwargs["n_values"]),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "speedup_warm_over_cold": round(cold_s / warm_s, 1),
    }


def _measure_grid(grid: SweepGrid, cache_root: Path) -> dict:
    """Cold and warm ``run_sweep`` of one grid against one fresh cache."""
    store = ResultCache(cache_root)
    t0 = time.perf_counter()
    cold = run_sweep(grid, cache=store)
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = run_sweep(grid, cache=store)
    warm_s = time.perf_counter() - t0
    if warm.to_json() != cold.to_json():
        raise AssertionError("warm sweep differs from cold — refusing to emit")
    if warm.meta["misses"]:
        raise AssertionError(f"warm sweep recomputed {warm.meta['misses']} cells")
    return {
        "name": "sweep_grid",
        "cells": len(grid),
        "trials": grid.trials,
        "n_values": list(grid.n),
        "d_values": list(grid.d),
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 4),
        "speedup_warm_over_cold": round(cold_s / warm_s, 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fast", action="store_true",
                        help="small sizes (CI smoke mode)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_sweeps.json",
                        help="output path (default: repo-root BENCH_sweeps.json)")
    args = parser.parse_args(argv)

    table1_kwargs = FAST_TABLE1 if args.fast else FULL_TABLE1
    grid = FAST_GRID if args.fast else FULL_GRID

    workdir = Path(tempfile.mkdtemp(prefix="repro-sweep-bench-"))
    try:
        results = [
            _measure_table1(table1_kwargs, workdir / "table1"),
            _measure_grid(grid, workdir / "grid"),
        ]
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    for cell in results:
        print(
            f"{cell['name']}: cold {cell['cold_seconds']}s, "
            f"warm {cell['warm_seconds']}s "
            f"(speedup {cell['speedup_warm_over_cold']}x, "
            f"{cell['cells']} cells x {cell['trials']} trials)"
        )

    payload = {
        "benchmark": "sweep_cache",
        "version": __version__,
        "mode": "fast" if args.fast else "full",
        "unix_time": int(time.time()),
        "manifest": run_manifest(),
        "cells": results,
    }
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
