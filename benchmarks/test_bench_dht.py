"""DHT benchmarks: routing and insertion costs of the application layer."""

import numpy as np
import pytest

from repro.dht.chord import ChordRing
from repro.dht.twochoice import TwoChoiceDHT
from repro.dht.workload import generate_keys

N = 1024


@pytest.fixture(scope="module")
def ring():
    r = ChordRing.random(N, seed=0)
    r.finger_table()  # build outside the timed region
    return r


def test_chord_lookup(benchmark, ring):
    rng = np.random.default_rng(1)
    idents = rng.integers(0, 1 << 63, size=512).astype(np.uint64) * np.uint64(2)
    starts = rng.integers(0, N, size=512)

    def route_all():
        hops = 0
        for ident, start in zip(idents, starts):
            hops += ring.lookup(int(ident), int(start)).hops
        return hops / idents.size

    mean_hops = benchmark(route_all)
    assert mean_hops <= np.log2(N)


def test_finger_table_build(benchmark):
    ring = ChordRing.random(N, seed=2)

    def rebuild():
        ring._fingers = None
        return ring.finger_table()

    fingers = benchmark(rebuild)
    assert fingers.shape == (N, 64)


def test_two_choice_insert_throughput(benchmark, ring):
    keys = generate_keys(500, seed=3)

    def insert_all():
        dht = TwoChoiceDHT(ring, d=2, seed=4)
        for k in keys:
            dht.insert(k)
        return dht

    dht = benchmark(insert_all)
    assert dht.loads().sum() == 500


def test_can_routing(benchmark):
    from repro.dht.can import CanNetwork

    can = CanNetwork.random(256, seed=5)
    can.neighbors(0)  # build adjacency outside the timed region
    rng = np.random.default_rng(6)
    points = rng.random((128, 2))
    starts = rng.integers(0, can.n, size=128)

    def route_all():
        return sum(
            can.route(p, int(s)).hops for p, s in zip(points, starts)
        ) / len(points)

    mean_hops = benchmark(route_all)
    # CAN bound ~ (k/2) n^{1/k} = 16 for k=2, n=256
    assert mean_hops <= 2 * 16


def test_can_space_placement(benchmark):
    from repro.core.placement import place_balls
    from repro.dht.can import CanSpace

    space = CanSpace.random(1024, seed=7)
    res = benchmark(lambda: place_balls(space, 1024, 2, seed=8))
    assert res.loads.sum() == 1024
